//! BM25 scoring and the wire-serialisable search-result type.

use crate::index::{GlobalStats, InvertedIndex};
use bytes::{BufMut, Bytes, BytesMut};
use netagg_core::AggError;
use netagg_net::wire;

const K1: f64 = 1.2;
const B: f64 = 0.75;

/// One scored document.
#[derive(Debug, Clone, PartialEq)]
pub struct ScoredDoc {
    /// Document identifier.
    pub doc: u32,
    /// BM25 relevance score.
    pub score: f64,
    /// Snippet text (carries the category markers for `categorise`).
    pub snippet: String,
}

/// A (partial) search result list, sorted by descending score.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SearchResults {
    /// Scored documents, best first.
    pub docs: Vec<ScoredDoc>,
}

impl SearchResults {
    /// Serialise to the wire format.
    pub fn encode(&self) -> Bytes {
        let mut b = BytesMut::new();
        b.put_u32(self.docs.len() as u32);
        for d in &self.docs {
            b.put_u32(d.doc);
            b.put_f64(d.score);
            wire::put_str(&mut b, &d.snippet);
        }
        b.freeze()
    }

    /// Parse the wire format, validating lengths before allocating.
    pub fn decode(payload: &Bytes) -> Result<Self, AggError> {
        let mut src = payload.clone();
        let n = wire::get_u32(&mut src).map_err(|e| AggError::Corrupt(e.to_string()))?;
        // Validate the untrusted count against the bytes actually present
        // (each document needs at least 16 bytes) before allocating.
        if (n as usize).saturating_mul(16) > src.len() {
            return Err(AggError::Corrupt(format!(
                "claimed {n} docs but only {} bytes follow",
                src.len()
            )));
        }
        let mut docs = Vec::with_capacity(n as usize);
        for _ in 0..n {
            let doc = wire::get_u32(&mut src).map_err(|e| AggError::Corrupt(e.to_string()))?;
            let score = wire::get_f64(&mut src).map_err(|e| AggError::Corrupt(e.to_string()))?;
            let snippet = wire::get_str(&mut src).map_err(|e| AggError::Corrupt(e.to_string()))?;
            docs.push(ScoredDoc {
                doc,
                score,
                snippet,
            });
        }
        Ok(Self { docs })
    }

    /// Approximate wire size in bytes.
    pub fn wire_size(&self) -> usize {
        4 + self
            .docs
            .iter()
            .map(|d| 4 + 8 + 4 + d.snippet.len())
            .sum::<usize>()
    }

    fn sort(&mut self) {
        self.docs.sort_by(|a, b| {
            b.score
                .partial_cmp(&a.score)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.doc.cmp(&b.doc))
        });
    }

    /// Merge several partial lists, keeping the global top-k.
    pub fn merge_topk(parts: Vec<SearchResults>, k: usize) -> SearchResults {
        let mut all = SearchResults {
            docs: parts.into_iter().flat_map(|p| p.docs).collect(),
        };
        all.sort();
        all.docs.truncate(k);
        all
    }
}

/// Disjunctive (OR) vs conjunctive (AND) matching.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum QueryMode {
    /// A document matches if it contains *any* query term (BM25 default).
    #[default]
    Any,
    /// A document matches only if it contains *every* query term.
    All,
}

impl QueryMode {
    /// Wire encoding of the mode.
    pub fn to_byte(self) -> u8 {
        match self {
            QueryMode::Any => 0,
            QueryMode::All => 1,
        }
    }

    /// Parse the wire encoding (unknown values fall back to `Any`).
    pub fn from_byte(b: u8) -> Self {
        if b == 1 {
            QueryMode::All
        } else {
            QueryMode::Any
        }
    }
}

/// Execute a query against a shard with shard-local statistics.
pub fn search(index: &InvertedIndex, terms: &[String], k: usize) -> SearchResults {
    search_with(index, None, terms, k)
}

/// Execute a query against a shard. With `stats`, BM25 uses corpus-global
/// document frequencies and average length, making distributed top-k merge
/// exactly equal to a single-index search.
pub fn search_with(
    index: &InvertedIndex,
    stats: Option<&GlobalStats>,
    terms: &[String],
    k: usize,
) -> SearchResults {
    search_mode(index, stats, terms, k, QueryMode::Any)
}

/// Execute a query with an explicit [`QueryMode`]. Under `All`, documents
/// missing any query term are filtered out before ranking.
pub fn search_mode(
    index: &InvertedIndex,
    stats: Option<&GlobalStats>,
    terms: &[String],
    k: usize,
    mode: QueryMode,
) -> SearchResults {
    let n = stats.map(|g| g.num_docs).unwrap_or(index.num_docs()) as f64;
    let avg = stats
        .map(|g| g.avg_doc_len())
        .unwrap_or(index.avg_doc_len())
        .max(1.0);
    let mut scores: std::collections::HashMap<u32, f64> = std::collections::HashMap::new();
    for term in terms {
        let Some(postings) = index.postings(term) else {
            continue;
        };
        let df = stats
            .map(|g| g.doc_freq.get(term).copied().unwrap_or(0))
            .unwrap_or(postings.len()) as f64;
        let idf = ((n - df + 0.5) / (df + 0.5) + 1.0).ln();
        for p in postings {
            let tf = p.tf as f64;
            let dl = index.doc_len(p.doc) as f64;
            let s = idf * (tf * (K1 + 1.0)) / (tf + K1 * (1.0 - B + B * dl / avg));
            *scores.entry(p.doc).or_insert(0.0) += s;
        }
    }
    // Conjunctive filtering: keep documents matched by every present term.
    let matched: Box<dyn Fn(u32) -> bool> = match mode {
        QueryMode::Any => Box::new(|_| true),
        QueryMode::All => {
            let mut per_doc: std::collections::HashMap<u32, usize> =
                std::collections::HashMap::new();
            let mut distinct = std::collections::HashSet::new();
            for term in terms {
                if !distinct.insert(term.as_str()) {
                    continue;
                }
                if let Some(postings) = index.postings(term) {
                    for p in postings {
                        *per_doc.entry(p.doc).or_insert(0) += 1;
                    }
                }
            }
            let needed = distinct.len();
            Box::new(move |doc| per_doc.get(&doc).copied().unwrap_or(0) == needed)
        }
    };
    let mut results = SearchResults {
        docs: scores
            .into_iter()
            .filter(|(doc, _)| matched(*doc))
            .map(|(doc, score)| ScoredDoc {
                doc,
                score,
                snippet: index.snippet(doc).to_string(),
            })
            .collect(),
    };
    results.sort();
    results.docs.truncate(k);
    results
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::Document;

    fn doc(id: u32, body: &str) -> Document {
        Document {
            id,
            title: String::new(),
            body: body.to_string(),
            base_category: 0,
        }
    }

    #[test]
    fn relevant_docs_rank_higher() {
        let idx = InvertedIndex::build(&[
            doc(0, "rust network aggregation middlebox"),
            doc(1, "rust rust rust network"),
            doc(2, "unrelated words entirely here"),
        ]);
        let r = search(&idx, &["rust".into()], 10);
        assert_eq!(r.docs.len(), 2);
        assert_eq!(r.docs[0].doc, 1, "higher tf ranks first");
        assert!(r.docs[0].score > r.docs[1].score);
    }

    #[test]
    fn top_k_truncates() {
        let docs: Vec<Document> = (0..20)
            .map(|i| doc(i, &format!("common word{i}")))
            .collect();
        let idx = InvertedIndex::build(&docs);
        let r = search(&idx, &["common".into()], 5);
        assert_eq!(r.docs.len(), 5);
    }

    #[test]
    fn unknown_terms_yield_empty() {
        let idx = InvertedIndex::build(&[doc(0, "something")]);
        let r = search(&idx, &["nothinghere".into()], 5);
        assert!(r.docs.is_empty());
    }

    #[test]
    fn encode_decode_roundtrip() {
        let r = SearchResults {
            docs: vec![
                ScoredDoc {
                    doc: 7,
                    score: 1.25,
                    snippet: "category:science words".into(),
                },
                ScoredDoc {
                    doc: 9,
                    score: 0.5,
                    snippet: String::new(),
                },
            ],
        };
        let d = SearchResults::decode(&r.encode()).unwrap();
        assert_eq!(d, r);
        assert!(r.wire_size() >= 16);
    }

    #[test]
    fn decode_rejects_truncation() {
        let r = SearchResults {
            docs: vec![ScoredDoc {
                doc: 1,
                score: 2.0,
                snippet: "abc".into(),
            }],
        };
        let enc = r.encode();
        let bad = enc.slice(0..enc.len() - 1);
        assert!(SearchResults::decode(&bad).is_err());
    }

    #[test]
    fn conjunctive_mode_requires_all_terms() {
        let idx = InvertedIndex::build(&[
            doc(0, "alpha beta gamma"),
            doc(1, "alpha beta"),
            doc(2, "alpha"),
            doc(3, "beta"),
        ]);
        let terms = vec!["alpha".to_string(), "beta".to_string()];
        let any = search_mode(&idx, None, &terms, 10, QueryMode::Any);
        let all = search_mode(&idx, None, &terms, 10, QueryMode::All);
        assert_eq!(any.docs.len(), 4);
        let mut all_ids: Vec<u32> = all.docs.iter().map(|d| d.doc).collect();
        all_ids.sort_unstable();
        assert_eq!(all_ids, vec![0, 1]);
        // Duplicate terms must not change the required count.
        let dup = vec!["alpha".to_string(), "alpha".to_string()];
        let d = search_mode(&idx, None, &dup, 10, QueryMode::All);
        assert_eq!(d.docs.len(), 3);
        // A term missing everywhere empties the conjunction.
        let none = vec!["alpha".to_string(), "zzz".to_string()];
        assert!(search_mode(&idx, None, &none, 10, QueryMode::All)
            .docs
            .is_empty());
    }

    #[test]
    fn merge_topk_is_global() {
        let a = SearchResults {
            docs: vec![
                ScoredDoc {
                    doc: 1,
                    score: 3.0,
                    snippet: String::new(),
                },
                ScoredDoc {
                    doc: 2,
                    score: 1.0,
                    snippet: String::new(),
                },
            ],
        };
        let b = SearchResults {
            docs: vec![ScoredDoc {
                doc: 3,
                score: 2.0,
                snippet: String::new(),
            }],
        };
        let m = SearchResults::merge_topk(vec![a, b], 2);
        assert_eq!(m.docs.iter().map(|d| d.doc).collect::<Vec<_>>(), vec![1, 3]);
    }

    #[test]
    fn merge_is_associative_and_commutative() {
        let part = |doc: u32, score: f64| SearchResults {
            docs: vec![ScoredDoc {
                doc,
                score,
                snippet: String::new(),
            }],
        };
        let (a, b, c) = (part(1, 3.0), part(2, 2.0), part(3, 1.0));
        let left = SearchResults::merge_topk(
            vec![
                SearchResults::merge_topk(vec![a.clone(), b.clone()], 10),
                c.clone(),
            ],
            2,
        );
        let right = SearchResults::merge_topk(
            vec![
                a.clone(),
                SearchResults::merge_topk(vec![c.clone(), b.clone()], 10),
            ],
            2,
        );
        let swapped = SearchResults::merge_topk(vec![c, b, a], 2);
        assert_eq!(left, right);
        assert_eq!(left, swapped);
    }
}
