//! NetAgg integration: the application-specific code needed to run the
//! search engine on the aggregation platform.
//!
//! This module (plus the `impl AggregationFunction` adapters in
//! [`crate::aggfn`] and the result codec in [`crate::score`]) is the
//! search-engine analogue of the paper's Table 1 line counts: the
//! serialiser/deserialiser, the aggregation wrapper around the query
//! component, and the shim wiring.

use crate::aggfn::{Categorise, Sample, TopK};
use crate::backend::Backend;
use crate::corpus::{Corpus, CorpusConfig};
use crate::frontend::{Frontend, FrontendConfig};
use crate::index::{GlobalStats, InvertedIndex};
use netagg_core::prelude::*;
use netagg_core::runtime::NetAggDeployment;
use netagg_net::Transport;
use std::sync::Arc;

/// Which aggregation function the deployment runs (Section 4.2.1).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SearchFunction {
    /// Global top-k merge.
    TopK {
        /// Documents kept overall.
        k: usize,
    },
    /// Cheap sampling with output ratio `alpha`.
    Sample {
        /// Output ratio in `[0, 1]`.
        alpha: f64,
    },
    /// CPU-intensive per-category classification.
    Categorise {
        /// Documents kept per base category.
        k_per_category: usize,
    },
}

/// A fully wired search cluster (frontend + backends + shims), with or
/// without agg boxes depending on the deployment's [`ClusterSpec`].
pub struct SearchCluster {
    /// The application id the cluster registered.
    pub app: AppId,
    /// The running frontend.
    pub frontend: Arc<Frontend>,
    /// The running backends, one per worker.
    pub backends: Vec<Backend>,
    /// Vocabulary size of the generated corpus (for query generation).
    pub corpus_vocabulary: usize,
}

impl SearchCluster {
    /// Register the search application on `deployment`, build and shard the
    /// corpus, and start the frontend and backends.
    pub fn launch(
        deployment: &mut NetAggDeployment,
        transport: Arc<dyn Transport>,
        corpus_cfg: &CorpusConfig,
        function: SearchFunction,
        frontend_cfg: FrontendConfig,
        share: f64,
    ) -> Result<Self, AggError> {
        let agg: Arc<dyn DynAggregator> = match function {
            SearchFunction::TopK { k } => Arc::new(AggWrapper::new(TopK::new(k))),
            SearchFunction::Sample { alpha } => Arc::new(AggWrapper::new(Sample::new(alpha))),
            SearchFunction::Categorise { k_per_category } => {
                Arc::new(AggWrapper::new(Categorise::new(k_per_category)))
            }
        };
        let app = deployment.register_app("minisearch", agg, share);
        let master = deployment.master_shim(app);

        let workers: Vec<u32> = deployment
            .tree_specs()
            .first()
            .map(|s| {
                let mut w: Vec<u32> = s
                    .worker_assignment
                    .keys()
                    .copied()
                    .chain(s.direct_workers.iter().copied())
                    .collect();
                w.sort_unstable();
                w
            })
            .unwrap_or_default();

        let corpus = Corpus::generate(corpus_cfg);
        let shards = corpus.shards(workers.len().max(1));
        let indexes: Vec<Arc<InvertedIndex>> = shards
            .iter()
            .map(|docs| Arc::new(InvertedIndex::build(docs)))
            .collect();
        // Corpus-global statistics keep distributed ranking identical to a
        // single index (and identical between plain and NetAgg modes).
        let stats = Arc::new(GlobalStats::from_shards(indexes.iter().map(Arc::as_ref)));
        let mut backends = Vec::new();
        for (i, &w) in workers.iter().enumerate() {
            let shim = deployment.worker_shim(app, w);
            backends.push(
                Backend::start_with_stats(
                    transport.clone(),
                    app,
                    w,
                    indexes[i].clone(),
                    Some(stats.clone()),
                    shim,
                )
                .map_err(AggError::from)?,
            );
        }
        let frontend = Frontend::start(transport, app, master, workers, frontend_cfg)
            .map_err(AggError::from)?;
        Ok(Self {
            app,
            frontend,
            backends,
            corpus_vocabulary: corpus_cfg.vocabulary,
        })
    }

    /// Stop the frontend and all backends. Idempotent.
    pub fn shutdown(&mut self) {
        self.frontend.shutdown();
        for b in &mut self.backends {
            b.shutdown();
        }
    }
}
