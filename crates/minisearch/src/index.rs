//! In-memory inverted index with BM25 statistics.

use crate::corpus::Document;
use crate::tokenize::tokenize;
use std::collections::HashMap;

/// One posting: a document containing the term and its term frequency.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Posting {
    /// Document containing the term.
    pub doc: u32,
    /// Term frequency within that document.
    pub tf: u32,
}

/// An index shard over a set of documents.
#[derive(Debug, Default)]
pub struct InvertedIndex {
    postings: HashMap<String, Vec<Posting>>,
    doc_len: HashMap<u32, u32>,
    /// First words of each document, kept as the result snippet (and the
    /// text the categorise function classifies).
    snippets: HashMap<u32, String>,
    total_len: u64,
}

impl InvertedIndex {
    /// Build an index over `docs`.
    pub fn build(docs: &[Document]) -> Self {
        let mut idx = Self::default();
        for d in docs {
            idx.add(d);
        }
        idx
    }

    /// Add one document to the index.
    pub fn add(&mut self, doc: &Document) {
        let terms = tokenize(&doc.body);
        let mut tf: HashMap<&str, u32> = HashMap::new();
        for t in &terms {
            *tf.entry(t.as_str()).or_insert(0) += 1;
        }
        for (term, f) in tf {
            self.postings
                .entry(term.to_string())
                .or_default()
                .push(Posting { doc: doc.id, tf: f });
        }
        self.doc_len.insert(doc.id, terms.len() as u32);
        self.total_len += terms.len() as u64;
        // Snippet: enough of the body to carry the category markers.
        let snippet: String = doc
            .body
            .split_whitespace()
            .filter(|w| w.starts_with("category:"))
            .chain(doc.body.split_whitespace().take(12))
            .collect::<Vec<_>>()
            .join(" ");
        self.snippets.insert(doc.id, snippet);
    }

    /// Number of indexed documents.
    pub fn num_docs(&self) -> usize {
        self.doc_len.len()
    }

    /// Mean document length in terms.
    pub fn avg_doc_len(&self) -> f64 {
        if self.doc_len.is_empty() {
            0.0
        } else {
            self.total_len as f64 / self.doc_len.len() as f64
        }
    }

    /// Posting list of `term`, if indexed.
    pub fn postings(&self, term: &str) -> Option<&[Posting]> {
        self.postings.get(term).map(Vec::as_slice)
    }

    /// Length of `doc` in terms (0 if unknown).
    pub fn doc_len(&self, doc: u32) -> u32 {
        self.doc_len.get(&doc).copied().unwrap_or(0)
    }

    /// Snippet text stored for `doc`.
    pub fn snippet(&self, doc: u32) -> &str {
        self.snippets.get(&doc).map(String::as_str).unwrap_or("")
    }

    /// Distinct indexed terms.
    pub fn vocabulary_size(&self) -> usize {
        self.postings.len()
    }

    /// Document frequency of a term within this shard.
    pub fn doc_freq(&self, term: &str) -> usize {
        self.postings.get(term).map(Vec::len).unwrap_or(0)
    }

    /// Iterate over `(term, document frequency)` pairs (for building
    /// corpus-global statistics).
    pub fn term_doc_freqs(&self) -> impl Iterator<Item = (&str, usize)> {
        self.postings.iter().map(|(t, p)| (t.as_str(), p.len()))
    }
}

/// Corpus-global collection statistics, shared by all shards so that
/// distributed scoring matches single-index scoring exactly (the
/// distributed-IDF problem real Solr deployments configure around).
#[derive(Debug, Clone, Default)]
pub struct GlobalStats {
    /// Documents across all shards.
    pub num_docs: usize,
    /// Total term count across all shards.
    pub total_len: u64,
    /// Corpus-wide document frequency per term.
    pub doc_freq: HashMap<String, usize>,
}

impl GlobalStats {
    /// Merge the statistics of all shards.
    pub fn from_shards<'a>(shards: impl IntoIterator<Item = &'a InvertedIndex>) -> Self {
        let mut g = GlobalStats::default();
        for s in shards {
            g.num_docs += s.num_docs();
            g.total_len += s.total_len;
            for (term, df) in s.term_doc_freqs() {
                *g.doc_freq.entry(term.to_string()).or_insert(0) += df;
            }
        }
        g
    }

    /// Corpus-wide mean document length in terms.
    pub fn avg_doc_len(&self) -> f64 {
        if self.num_docs == 0 {
            0.0
        } else {
            self.total_len as f64 / self.num_docs as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(id: u32, body: &str) -> Document {
        Document {
            id,
            title: format!("d{id}"),
            body: body.to_string(),
            base_category: 0,
        }
    }

    #[test]
    fn builds_postings_with_frequencies() {
        let idx = InvertedIndex::build(&[doc(0, "apple banana apple"), doc(1, "banana cherry")]);
        assert_eq!(idx.num_docs(), 2);
        let apple = idx.postings("apple").unwrap();
        assert_eq!(apple, &[Posting { doc: 0, tf: 2 }]);
        let banana = idx.postings("banana").unwrap();
        assert_eq!(banana.len(), 2);
        assert!(idx.postings("missing").is_none());
    }

    #[test]
    fn tracks_lengths_and_average() {
        let idx = InvertedIndex::build(&[doc(0, "one two three"), doc(1, "one")]);
        assert_eq!(idx.doc_len(0), 3);
        assert_eq!(idx.doc_len(1), 1);
        assert!((idx.avg_doc_len() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn snippet_preserves_category_markers() {
        let idx = InvertedIndex::build(&[doc(0, "lots of words here category:science more words")]);
        assert!(idx.snippet(0).contains("category:science"));
    }

    #[test]
    fn empty_index_is_sane() {
        let idx = InvertedIndex::default();
        assert_eq!(idx.num_docs(), 0);
        assert_eq!(idx.avg_doc_len(), 0.0);
        assert_eq!(idx.snippet(7), "");
    }
}
