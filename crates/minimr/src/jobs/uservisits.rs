//! UserVisits: ad revenue per source-IP prefix from web logs (the HiBench
//! / CALDA-style UV benchmark the paper runs).

use crate::job::Job;
use crate::types::{f64_value, parse_f64, Pair};
use bytes::Bytes;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The UserVisits job.
pub struct UserVisits;

impl Job for UserVisits {
    fn name(&self) -> &'static str {
        "uservisits"
    }

    /// Records are `ip,revenue,url` lines; the key is the /24 prefix.
    fn map(&self, record: &[u8], emit: &mut dyn FnMut(Pair)) {
        let Ok(line) = std::str::from_utf8(record) else {
            return;
        };
        let mut fields = line.split(',');
        let (Some(ip), Some(rev)) = (fields.next(), fields.next()) else {
            return;
        };
        let Ok(revenue) = rev.parse::<f64>() else {
            return;
        };
        let prefix = match ip.rfind('.') {
            Some(i) => &ip[..i],
            None => ip,
        };
        emit(Pair::new(prefix.to_string(), f64_value(revenue)));
    }

    fn combine(&self, _key: &[u8], values: Vec<Bytes>) -> Vec<Bytes> {
        vec![f64_value(values.iter().filter_map(|v| parse_f64(v)).sum())]
    }

    fn reduce(&self, key: &[u8], values: Vec<Bytes>) -> Vec<Pair> {
        self.combine(key, values)
            .into_iter()
            .map(|v| Pair::new(key.to_vec(), v))
            .collect()
    }
}

/// Web-log lines over `prefixes` /24 prefixes.
pub fn uservisits_input(
    mappers: usize,
    bytes_per_mapper: usize,
    prefixes: usize,
    seed: u64,
) -> Vec<Vec<Bytes>> {
    let mut out = Vec::with_capacity(mappers);
    for m in 0..mappers {
        let mut rng = StdRng::seed_from_u64(seed ^ (m as u64) << 9);
        let mut split = Vec::new();
        let mut produced = 0usize;
        while produced < bytes_per_mapper {
            let p = rng.random_range(0..prefixes);
            let line = format!(
                "10.{}.{}.{},{:.4},http://example.org/page{}",
                p / 256,
                p % 256,
                rng.random_range(0..256),
                rng.random::<f64>() * 10.0,
                rng.random_range(0..1000)
            );
            produced += line.len();
            split.push(Bytes::from(line));
        }
        out.push(split);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::combine_pairs;

    #[test]
    fn map_keys_by_prefix() {
        let j = UserVisits;
        let mut pairs = Vec::new();
        j.map(b"10.0.0.1,2.5,http://x", &mut |p| pairs.push(p));
        j.map(b"10.0.0.200,1.5,http://y", &mut |p| pairs.push(p));
        let combined = combine_pairs(&j, pairs);
        assert_eq!(combined.len(), 1);
        assert_eq!(combined[0].key.as_ref(), b"10.0.0");
        assert!((parse_f64(&combined[0].value).unwrap() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn malformed_lines_are_skipped() {
        let j = UserVisits;
        let mut pairs = Vec::new();
        j.map(b"not-a-log-line", &mut |p| pairs.push(p));
        j.map(b"10.0.0.1,NaNrevenue?", &mut |p| pairs.push(p));
        assert!(pairs.is_empty());
    }

    #[test]
    fn generated_input_parses() {
        let inputs = uservisits_input(1, 2_000, 50, 2);
        let j = UserVisits;
        let mut pairs = Vec::new();
        for r in &inputs[0] {
            j.map(r, &mut |p| pairs.push(p));
        }
        assert_eq!(pairs.len(), inputs[0].len());
    }
}
