//! TeraSort: the sorting benchmark with an identity reduce. Its data
//! cannot be aggregated (output ratio 1), which is why the paper's Fig. 22
//! shows no NetAgg benefit for TS — included to verify that behaviour.

use crate::job::Job;
use crate::types::Pair;
use bytes::Bytes;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Key and value sizes of the classic 100-byte TeraSort record.
const KEY_LEN: usize = 10;
const VALUE_LEN: usize = 90;

/// The TeraSort job.
pub struct TeraSort;

impl Job for TeraSort {
    fn name(&self) -> &'static str {
        "terasort"
    }

    fn map(&self, record: &[u8], emit: &mut dyn FnMut(Pair)) {
        if record.len() < KEY_LEN {
            return;
        }
        emit(Pair::new(
            record[..KEY_LEN].to_vec(),
            record[KEY_LEN..].to_vec(),
        ));
    }

    // Identity combine (inherited default): sorting cannot reduce data.

    fn reduce(&self, key: &[u8], values: Vec<Bytes>) -> Vec<Pair> {
        values
            .into_iter()
            .map(|v| Pair::new(key.to_vec(), v))
            .collect()
    }
}

/// Random 100-byte records.
pub fn terasort_input(mappers: usize, bytes_per_mapper: usize, seed: u64) -> Vec<Vec<Bytes>> {
    let records = bytes_per_mapper / (KEY_LEN + VALUE_LEN);
    let mut out = Vec::with_capacity(mappers);
    for m in 0..mappers {
        let mut rng = StdRng::seed_from_u64(seed ^ (m as u64) << 5);
        let mut split = Vec::with_capacity(records);
        for _ in 0..records {
            let mut rec = vec![0u8; KEY_LEN + VALUE_LEN];
            for b in rec.iter_mut().take(KEY_LEN) {
                *b = rng.random_range(b'A'..=b'Z');
            }
            for b in rec.iter_mut().skip(KEY_LEN) {
                *b = rng.random_range(b'a'..=b'z');
            }
            split.push(Bytes::from(rec));
        }
        out.push(split);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::combine_pairs;

    #[test]
    fn map_splits_key_value() {
        let j = TeraSort;
        let rec: Vec<u8> = (0..100).collect();
        let mut pairs = Vec::new();
        j.map(&rec, &mut |p| pairs.push(p));
        assert_eq!(pairs[0].key.len(), 10);
        assert_eq!(pairs[0].value.len(), 90);
    }

    #[test]
    fn combine_does_not_reduce() {
        let j = TeraSort;
        let pairs = vec![Pair::new("k", "a"), Pair::new("k", "b")];
        assert_eq!(combine_pairs(&j, pairs).len(), 2);
    }

    #[test]
    fn reduce_is_identity_per_key() {
        let j = TeraSort;
        let out = j.reduce(
            b"key",
            vec![Bytes::from_static(b"v1"), Bytes::from_static(b"v2")],
        );
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn records_sort_by_key() {
        let inputs = terasort_input(1, 10_000, 9);
        let j = TeraSort;
        let mut pairs = Vec::new();
        for r in &inputs[0] {
            j.map(r, &mut |p| pairs.push(p));
        }
        pairs.sort();
        for w in pairs.windows(2) {
            assert!(w[0].key <= w[1].key);
        }
        assert_eq!(pairs.len(), 100);
    }
}
