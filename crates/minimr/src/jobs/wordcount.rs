//! WordCount: count distinct words in text. The benchmark whose input
//! repetition the paper varies to control the output ratio (Fig. 23).

use crate::job::Job;
use crate::types::{parse_u64, u64_value, Pair};
use bytes::Bytes;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The WordCount job.
pub struct WordCount;

impl Job for WordCount {
    fn name(&self) -> &'static str {
        "wordcount"
    }

    fn map(&self, record: &[u8], emit: &mut dyn FnMut(Pair)) {
        let Ok(line) = std::str::from_utf8(record) else {
            return;
        };
        for word in line.split_whitespace() {
            emit(Pair::new(word.to_string(), u64_value(1)));
        }
    }

    fn combine(&self, _key: &[u8], values: Vec<Bytes>) -> Vec<Bytes> {
        vec![u64_value(values.iter().filter_map(|v| parse_u64(v)).sum())]
    }

    fn reduce(&self, key: &[u8], values: Vec<Bytes>) -> Vec<Pair> {
        self.combine(key, values)
            .into_iter()
            .map(|v| Pair::new(key.to_vec(), v))
            .collect()
    }
}

/// Text lines of words drawn uniformly from a vocabulary of
/// `distinct_words`: fewer distinct words mean more repetition, more
/// combining and thus a lower output ratio.
pub fn wordcount_input(
    mappers: usize,
    bytes_per_mapper: usize,
    distinct_words: usize,
    seed: u64,
) -> Vec<Vec<Bytes>> {
    let mut out = Vec::with_capacity(mappers);
    for m in 0..mappers {
        let mut rng = StdRng::seed_from_u64(seed ^ (m as u64) << 17);
        let mut split = Vec::new();
        let mut produced = 0usize;
        while produced < bytes_per_mapper {
            let mut line = String::new();
            for _ in 0..10 {
                line.push_str(&format!("word{:06} ", rng.random_range(0..distinct_words)));
            }
            produced += line.len();
            split.push(Bytes::from(line));
        }
        out.push(split);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::combine_pairs;

    #[test]
    fn counts_words() {
        let j = WordCount;
        let mut pairs = Vec::new();
        j.map(b"apple banana apple", &mut |p| pairs.push(p));
        assert_eq!(pairs.len(), 3);
        let combined = combine_pairs(&j, pairs);
        let apple = combined
            .iter()
            .find(|p| p.key.as_ref() == b"apple")
            .unwrap();
        assert_eq!(parse_u64(&apple.value).unwrap(), 2);
    }

    #[test]
    fn input_respects_size_and_vocabulary() {
        let inputs = wordcount_input(3, 5_000, 10, 1);
        assert_eq!(inputs.len(), 3);
        for split in &inputs {
            let total: usize = split.iter().map(Bytes::len).sum();
            assert!((5_000..6_000).contains(&total));
        }
        // Low vocabulary implies heavy repetition -> high reduction.
        let j = WordCount;
        let mut pairs = Vec::new();
        for r in &inputs[0] {
            j.map(r, &mut |p| pairs.push(p));
        }
        let n_before = pairs.len();
        let n_after = combine_pairs(&j, pairs).len();
        assert!(n_after <= 10);
        assert!(n_before > 10 * n_after);
    }

    #[test]
    fn non_utf8_records_are_skipped() {
        let j = WordCount;
        let mut pairs = Vec::new();
        j.map(&[0xff, 0xfe], &mut |p| pairs.push(p));
        assert!(pairs.is_empty());
    }
}
