//! AdPredictor: Bayesian click-through-rate learning from impression logs
//! (after the Microsoft Bing AdPredictor the paper's AP benchmark models).
//!
//! Map emits per-feature impression/click counts; combine sums them; the
//! reduce step performs the compute-heavy posterior update (the paper
//! notes AP gains least from NetAgg because it is compute-bound).

use crate::job::Job;
use crate::types::Pair;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Value payload: (impressions u64, clicks u64, mean f64, variance f64).
fn stats_value(imps: u64, clicks: u64, mean: f64, var: f64) -> Bytes {
    let mut b = BytesMut::with_capacity(32);
    b.put_u64(imps);
    b.put_u64(clicks);
    b.put_f64(mean);
    b.put_f64(var);
    b.freeze()
}

fn parse_stats(mut b: &[u8]) -> Option<(u64, u64, f64, f64)> {
    if b.len() != 32 {
        return None;
    }
    Some((b.get_u64(), b.get_u64(), b.get_f64(), b.get_f64()))
}

/// The AP job. `ep_iterations` controls the CPU weight of the posterior
/// update at reduce time.
pub struct AdPredictor {
    /// Fixed-point iterations of the posterior update (CPU weight).
    pub ep_iterations: u32,
}

impl Default for AdPredictor {
    fn default() -> Self {
        Self { ep_iterations: 200 }
    }
}

impl Job for AdPredictor {
    fn name(&self) -> &'static str {
        "adpredictor"
    }

    /// Records are `feature_id u32 | clicked u8`.
    fn map(&self, record: &[u8], emit: &mut dyn FnMut(Pair)) {
        if record.len() != 5 {
            return;
        }
        let feature = u32::from_be_bytes([record[0], record[1], record[2], record[3]]);
        let clicked = record[4] != 0;
        emit(Pair::new(
            feature.to_be_bytes().to_vec(),
            stats_value(1, u64::from(clicked), 0.0, 1.0),
        ));
    }

    fn combine(&self, _key: &[u8], values: Vec<Bytes>) -> Vec<Bytes> {
        let (mut imps, mut clicks) = (0u64, 0u64);
        for v in &values {
            if let Some((i, c, _, _)) = parse_stats(v) {
                imps += i;
                clicks += c;
            }
        }
        vec![stats_value(imps, clicks, 0.0, 1.0)]
    }

    /// Gaussian posterior update via fixed-point iteration (message-passing
    /// flavoured): deliberately CPU-heavy, like the real AP trainer.
    fn reduce(&self, key: &[u8], values: Vec<Bytes>) -> Vec<Pair> {
        let combined = self.combine(key, values);
        let Some((imps, clicks, _, _)) = parse_stats(&combined[0]) else {
            return Vec::new();
        };
        let ctr_obs = if imps > 0 {
            clicks as f64 / imps as f64
        } else {
            0.0
        };
        let (mut mean, mut var) = (0.0f64, 1.0f64);
        for _ in 0..self.ep_iterations {
            // Probit-style moment matching towards the observed CTR.
            let t = mean / (1.0 + var).sqrt();
            let phi = (-(t * t) / 2.0).exp() / (2.0 * std::f64::consts::PI).sqrt();
            let cdf = 0.5 * (1.0 + erf(t / std::f64::consts::SQRT_2));
            let grad = (ctr_obs - cdf) * phi;
            mean += var * grad;
            var = (var * (1.0 - var * phi * phi / (1.0 + var))).max(1e-6);
        }
        vec![Pair::new(
            key.to_vec(),
            stats_value(imps, clicks, mean, var),
        )]
    }
}

/// Abramowitz–Stegun erf approximation.
fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.327_591_1 * x);
    let y = 1.0
        - (((((1.061_405_429 * t - 1.453_152_027) * t) + 1.421_413_741) * t - 0.284_496_736) * t
            + 0.254_829_592)
            * t
            * (-x * x).exp();
    sign * y
}

/// Impression logs: 5-byte records over `features` feature ids with a
/// per-feature click probability.
pub fn adpredictor_input(
    mappers: usize,
    bytes_per_mapper: usize,
    features: usize,
    seed: u64,
) -> Vec<Vec<Bytes>> {
    let records = bytes_per_mapper / 5;
    let mut out = Vec::with_capacity(mappers);
    for m in 0..mappers {
        let mut rng = StdRng::seed_from_u64(seed ^ (m as u64) << 21);
        let mut split = Vec::with_capacity(records);
        for _ in 0..records {
            let f = rng.random_range(0..features) as u32;
            let ctr = 0.02 + 0.1 * (f % 10) as f64 / 10.0;
            let clicked = rng.random::<f64>() < ctr;
            let mut rec = BytesMut::with_capacity(5);
            rec.put_u32(f);
            rec.put_u8(u8::from(clicked));
            split.push(rec.freeze());
        }
        out.push(split);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::combine_pairs;

    #[test]
    fn map_and_combine_count_impressions() {
        let j = AdPredictor::default();
        let mut pairs = Vec::new();
        let rec_click = [0, 0, 0, 7, 1];
        let rec_noclick = [0, 0, 0, 7, 0];
        j.map(&rec_click, &mut |p| pairs.push(p));
        j.map(&rec_noclick, &mut |p| pairs.push(p));
        let combined = combine_pairs(&j, pairs);
        assert_eq!(combined.len(), 1);
        let (imps, clicks, _, _) = parse_stats(&combined[0].value).unwrap();
        assert_eq!((imps, clicks), (2, 1));
    }

    #[test]
    fn reduce_converges_towards_observed_ctr() {
        let j = AdPredictor::default();
        let values = vec![stats_value(1000, 500, 0.0, 1.0)];
        let out = j.reduce(&7u32.to_be_bytes(), values);
        let (_, _, mean, var) = parse_stats(&out[0].value).unwrap();
        // Observed CTR 0.5 corresponds to a probit mean near 0.
        assert!(mean.abs() < 0.2, "mean {mean}");
        assert!(var > 0.0 && var <= 1.0);
    }

    #[test]
    fn bad_records_are_skipped() {
        let j = AdPredictor::default();
        let mut pairs = Vec::new();
        j.map(b"bad", &mut |p| pairs.push(p));
        assert!(pairs.is_empty());
    }

    #[test]
    fn erf_matches_known_values() {
        assert!((erf(0.0)).abs() < 1e-7);
        assert!((erf(1.0) - 0.8427).abs() < 1e-3);
        assert!((erf(-1.0) + 0.8427).abs() < 1e-3);
    }

    #[test]
    fn input_generator_sizes() {
        let inputs = adpredictor_input(2, 500, 10, 3);
        assert_eq!(inputs.len(), 2);
        assert_eq!(inputs[0].len(), 100);
        assert!(inputs[0].iter().all(|r| r.len() == 5));
    }
}
