//! PageRank: one rank-propagation iteration over a synthetic power-law
//! graph.

use crate::job::Job;
use crate::types::{f64_value, parse_f64, Pair};
use bytes::Bytes;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const DAMPING: f64 = 0.85;

/// The PageRank job (one rank-propagation iteration).
pub struct PageRank;

impl Job for PageRank {
    fn name(&self) -> &'static str {
        "pagerank"
    }

    /// Records are adjacency lines: `src rank dst1 dst2 ...`. Map emits the
    /// rank mass each destination receives.
    fn map(&self, record: &[u8], emit: &mut dyn FnMut(Pair)) {
        let Ok(line) = std::str::from_utf8(record) else {
            return;
        };
        let mut it = line.split_whitespace();
        let (Some(_src), Some(rank)) = (it.next(), it.next()) else {
            return;
        };
        let Ok(rank) = rank.parse::<f64>() else {
            return;
        };
        let dsts: Vec<&str> = it.collect();
        if dsts.is_empty() {
            return;
        }
        let share = rank / dsts.len() as f64;
        for d in dsts {
            emit(Pair::new(d.to_string(), f64_value(share)));
        }
    }

    fn combine(&self, _key: &[u8], values: Vec<Bytes>) -> Vec<Bytes> {
        vec![f64_value(values.iter().filter_map(|v| parse_f64(v)).sum())]
    }

    fn reduce(&self, key: &[u8], values: Vec<Bytes>) -> Vec<Pair> {
        let mass: f64 = values.iter().filter_map(|v| parse_f64(v)).sum();
        let new_rank = (1.0 - DAMPING) + DAMPING * mass;
        vec![Pair::new(key.to_vec(), f64_value(new_rank))]
    }
}

/// Adjacency lines over a graph with a Zipf-ish in-degree skew: node ids
/// are drawn with probability decaying in rank, giving realistic hub
/// structure.
pub fn pagerank_input(mappers: usize, bytes_per_mapper: usize, seed: u64) -> Vec<Vec<Bytes>> {
    let nodes = 5_000usize;
    let mut out = Vec::with_capacity(mappers);
    let mut next_src = 0usize;
    for m in 0..mappers {
        let mut rng = StdRng::seed_from_u64(seed ^ (m as u64) << 13);
        let mut split = Vec::new();
        let mut produced = 0usize;
        while produced < bytes_per_mapper {
            let src = next_src % nodes;
            next_src += 1;
            let degree = rng.random_range(3..12);
            let mut line = format!("n{src} 1.0");
            for _ in 0..degree {
                // Square the uniform to skew towards low ids (hubs).
                let u: f64 = rng.random();
                let dst = ((u * u) * nodes as f64) as usize;
                line.push_str(&format!(" n{dst}"));
            }
            produced += line.len();
            split.push(Bytes::from(line));
        }
        out.push(split);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::combine_pairs;

    #[test]
    fn map_splits_rank_across_destinations() {
        let j = PageRank;
        let mut pairs = Vec::new();
        j.map(b"n0 1.0 n1 n2", &mut |p| pairs.push(p));
        assert_eq!(pairs.len(), 2);
        for p in &pairs {
            assert!((parse_f64(&p.value).unwrap() - 0.5).abs() < 1e-12);
        }
    }

    #[test]
    fn reduce_applies_damping() {
        let j = PageRank;
        let out = j.reduce(b"n1", vec![f64_value(0.5), f64_value(0.25)]);
        let rank = parse_f64(&out[0].value).unwrap();
        assert!((rank - (0.15 + 0.85 * 0.75)).abs() < 1e-12);
    }

    #[test]
    fn combine_sums_mass() {
        let j = PageRank;
        let pairs = vec![
            Pair::new("n1", f64_value(0.1)),
            Pair::new("n1", f64_value(0.2)),
            Pair::new("n2", f64_value(0.3)),
        ];
        let combined = combine_pairs(&j, pairs);
        assert_eq!(combined.len(), 2);
    }

    #[test]
    fn dangling_nodes_emit_nothing() {
        let j = PageRank;
        let mut pairs = Vec::new();
        j.map(b"n0 1.0", &mut |p| pairs.push(p));
        assert!(pairs.is_empty());
    }

    #[test]
    fn input_generator_is_deterministic() {
        let a = pagerank_input(2, 2_000, 5);
        let b = pagerank_input(2, 2_000, 5);
        assert_eq!(a[0], b[0]);
        assert_eq!(a[1], b[1]);
    }
}
