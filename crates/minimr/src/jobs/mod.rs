//! The five benchmark jobs of the paper's Fig. 22, with synthetic input
//! generators: WordCount (WC), AdPredictor (AP), PageRank (PR), UserVisits
//! (UV) and TeraSort (TS).

mod adpredictor;
mod pagerank;
mod terasort;
mod uservisits;
mod wordcount;

pub use adpredictor::{adpredictor_input, AdPredictor};
pub use pagerank::{pagerank_input, PageRank};
pub use terasort::{terasort_input, TeraSort};
pub use uservisits::{uservisits_input, UserVisits};
pub use wordcount::{wordcount_input, WordCount};

use crate::job::Job;
use std::sync::Arc;

/// Benchmark identifiers as the paper labels them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Benchmark {
    /// WordCount.
    WC,
    /// AdPredictor (Bayesian click-through learning).
    AP,
    /// PageRank (one iteration).
    PR,
    /// UserVisits (revenue per IP prefix).
    UV,
    /// TeraSort (identity reduce; no data reduction).
    TS,
}

impl Benchmark {
    /// All five benchmarks, in the paper's presentation order.
    pub const ALL: [Benchmark; 5] = [
        Benchmark::WC,
        Benchmark::AP,
        Benchmark::PR,
        Benchmark::UV,
        Benchmark::TS,
    ];

    /// Two-letter label used in Fig. 22's table.
    pub fn label(&self) -> &'static str {
        match self {
            Benchmark::WC => "WC",
            Benchmark::AP => "AP",
            Benchmark::PR => "PR",
            Benchmark::UV => "UV",
            Benchmark::TS => "TS",
        }
    }

    /// Instantiate the job.
    pub fn job(&self) -> Arc<dyn Job> {
        match self {
            Benchmark::WC => Arc::new(WordCount),
            Benchmark::AP => Arc::new(AdPredictor::default()),
            Benchmark::PR => Arc::new(PageRank),
            Benchmark::UV => Arc::new(UserVisits),
            Benchmark::TS => Arc::new(TeraSort),
        }
    }

    /// Generate per-mapper inputs totalling roughly `total_bytes`.
    pub fn input(&self, mappers: usize, total_bytes: usize, seed: u64) -> Vec<Vec<bytes::Bytes>> {
        let per = total_bytes / mappers.max(1);
        match self {
            // Default WordCount repetition gives roughly the paper's
            // alpha = 10 % regime.
            Benchmark::WC => wordcount_input(mappers, per, 2_000, seed),
            Benchmark::AP => adpredictor_input(mappers, per, 3_000, seed),
            Benchmark::PR => pagerank_input(mappers, per, seed),
            Benchmark::UV => uservisits_input(mappers, per, 2_000, seed),
            Benchmark::TS => terasort_input(mappers, per, seed),
        }
    }
}
