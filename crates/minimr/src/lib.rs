//! A map/reduce framework — the Apache Hadoop substitute used by the
//! NetAgg testbed evaluation (Section 3.3 / 4.2.2 of the paper).
//!
//! * [`job::Job`] — user code: `map`, an associative/commutative `combine`
//!   (Hadoop's combiner interface, which is exactly what agg boxes
//!   execute), and the final `reduce`.
//! * [`seqfile`] — the sequence-file-style binary key/value codec,
//!   including the chunk decoder that handles records split across chunk
//!   boundaries (the paper's Hadoop deserialiser concern).
//! * [`cluster`] — the job driver: mappers run in parallel, their
//!   intermediate pairs stream through worker shims (and, when deployed,
//!   through on-path agg boxes running the combiner) to the reducer at the
//!   master. The driver reports the shuffle+reduce time the paper measures.
//! * [`jobs`] — the five benchmarks of Fig. 22: WordCount, AdPredictor,
//!   PageRank, UserVisits and TeraSort, with synthetic input generators
//!   whose parameters control the intermediate data size and output ratio.

//! # Quick example
//!
//! ```
//! use bytes::Bytes;
//! use minimr::cluster::{JobConfig, run_job};
//! use minimr::jobs::WordCount;
//! use minimr::types::parse_u64;
//! use netagg_core::prelude::*;
//! use netagg_net::ChannelTransport;
//! use std::sync::Arc;
//!
//! // Three mappers, one agg box running the combiner on-path.
//! let transport = Arc::new(ChannelTransport::new());
//! let mut deployment =
//!     NetAggDeployment::launch(transport, &ClusterSpec::single_rack(3, 1)).unwrap();
//! let inputs = vec![
//!     vec![Bytes::from_static(b"a b a")],
//!     vec![Bytes::from_static(b"b")],
//!     vec![Bytes::from_static(b"a")],
//! ];
//! let result = run_job(&mut deployment, Arc::new(WordCount), inputs, &JobConfig::default())
//!     .unwrap();
//! let count_a = result
//!     .output
//!     .iter()
//!     .find(|p| p.key.as_ref() == b"a")
//!     .and_then(|p| parse_u64(&p.value))
//!     .unwrap();
//! assert_eq!(count_a, 3);
//! deployment.shutdown();
//! ```

#![warn(missing_docs)]

pub mod cluster;
pub mod job;
pub mod job_fn;
pub mod jobs;
pub mod netagg;
pub mod seqfile;
pub mod shuffle;
pub mod types;

pub use cluster::{run_job, JobConfig, JobResult};
pub use job::Job;
pub use netagg::CombinerAgg;
pub use types::Pair;
