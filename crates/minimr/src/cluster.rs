//! The job driver: parallel mappers, shuffle through shims (and on-path
//! combiners when agg boxes are deployed), final reduce at the master.
//!
//! The driver measures the phases the paper's Hadoop evaluation reports:
//! map time (excluded from comparisons, as in the paper) and
//! shuffle+reduce time (Fig. 22–24's metric).

use crate::job::{combine_pairs, group_by_key, Job};
use crate::netagg::CombinerAgg;
use crate::seqfile;
use crate::shuffle::key_hash;
use crate::types::Pair;
use bytes::Bytes;
use netagg_core::prelude::*;
use netagg_core::runtime::NetAggDeployment;
use netagg_core::shim::TreeSelection;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Per-run options.
#[derive(Debug, Clone)]
pub struct JobConfig {
    /// Platform request id used for the shuffle.
    pub request_id: u64,
    /// Target serialised chunk size for the shuffle.
    pub chunk_bytes: usize,
    /// Run the combiner at the mapper before the shuffle (Hadoop's
    /// map-side combine; on by default, as in plain Hadoop).
    pub map_side_combine: bool,
    /// Every n-th mapper also runs a speculative backup whose duplicate
    /// output is suppressed by the platform's per-source sequence numbers
    /// (0 disables). Models Hadoop's speculative execution.
    pub speculate_every: usize,
    /// Deadline for the aggregated shuffle to arrive at the reducer.
    pub timeout: Duration,
}

impl Default for JobConfig {
    fn default() -> Self {
        Self {
            request_id: 1,
            chunk_bytes: 256 * 1024,
            map_side_combine: true,
            speculate_every: 0,
            timeout: Duration::from_secs(120),
        }
    }
}

/// Outcome and measurements of one job run.
#[derive(Debug)]
pub struct JobResult {
    /// Reducer output, sorted by key.
    pub output: Vec<Pair>,
    /// Wall-clock time of the map phase (excluded from comparisons).
    pub map_time: Duration,
    /// The paper's metric: time from map completion to reduce completion.
    pub shuffle_reduce_time: Duration,
    /// Serialised intermediate bytes leaving the mappers.
    pub intermediate_bytes: u64,
    /// Bytes the reducer (master) received.
    pub reducer_input_bytes: u64,
    /// Serialised size of the final output.
    pub output_bytes: u64,
}

impl JobResult {
    /// Achieved reduction: reducer input / intermediate bytes.
    pub fn reduction_ratio(&self) -> f64 {
        if self.intermediate_bytes == 0 {
            1.0
        } else {
            self.reducer_input_bytes as f64 / self.intermediate_bytes as f64
        }
    }
}

/// A launched map/reduce application: shims wired to a deployment.
pub struct MRCluster {
    /// The application id the job registered on the platform.
    pub app: AppId,
    job: Arc<dyn Job>,
    master: Arc<MasterShim>,
    shims: Vec<Arc<WorkerShim>>,
    selection: TreeSelection,
    num_trees: u32,
}

impl MRCluster {
    /// Register the job's combiner on the deployment and create the shims
    /// (one per cluster worker = one mapper slot).
    pub fn launch(
        deployment: &mut NetAggDeployment,
        job: Arc<dyn Job>,
        selection: TreeSelection,
        share: f64,
    ) -> Self {
        let agg: Arc<dyn DynAggregator> = Arc::new(AggWrapper::new(CombinerAgg::new(job.clone())));
        let app = deployment.register_app(job.name(), agg, share);
        let master = deployment.master_shim(app);
        let workers: Vec<u32> = deployment
            .tree_specs()
            .first()
            .map(|s| {
                let mut w: Vec<u32> = s
                    .worker_assignment
                    .keys()
                    .copied()
                    .chain(s.direct_workers.iter().copied())
                    .collect();
                w.sort_unstable();
                w
            })
            .unwrap_or_default();
        let shims = workers
            .iter()
            .map(|&w| deployment.worker_shim(app, w))
            .collect();
        Self {
            app,
            job,
            master,
            shims,
            selection,
            num_trees: deployment.tree_specs().len() as u32,
        }
    }

    /// Number of mapper slots (cluster workers).
    pub fn num_mappers(&self) -> usize {
        self.shims.len()
    }

    /// Run one job over per-mapper input records. `inputs.len()` must equal
    /// [`Self::num_mappers`] (idle mappers still close their streams).
    pub fn run(&self, inputs: Vec<Vec<Bytes>>, cfg: &JobConfig) -> Result<JobResult, AggError> {
        assert_eq!(inputs.len(), self.shims.len(), "one input split per mapper");
        let request = cfg.request_id;

        // ------- Map phase (excluded from the paper's measurements).
        let t_map = Instant::now();
        let mapped: Vec<Vec<Pair>> = std::thread::scope(|s| {
            let handles: Vec<_> = inputs
                .iter()
                .map(|split| {
                    let job = self.job.clone();
                    s.spawn(move || {
                        let mut pairs = Vec::new();
                        for record in split {
                            job.map(record, &mut |p| pairs.push(p));
                        }
                        if cfg.map_side_combine {
                            combine_pairs(job.as_ref(), pairs)
                        } else {
                            pairs
                        }
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        let map_time = t_map.elapsed();

        // ------- Shuffle + reduce (the measured phase).
        let pending = self.master.register_request(request, self.shims.len());
        let t0 = Instant::now();
        let intermediate_bytes: u64 = std::thread::scope(|s| {
            let handles: Vec<_> = mapped
                .into_iter()
                .zip(&self.shims)
                .map(|(pairs, shim)| {
                    let selection = self.selection;
                    let num_trees = self.num_trees;
                    s.spawn(move || -> Result<u64, AggError> {
                        let mut sent = 0u64;
                        match selection {
                            TreeSelection::PerRequest => {
                                let chunks = seqfile::chunk_pairs(&pairs, cfg.chunk_bytes);
                                if chunks.is_empty() {
                                    shim.send_chunk(request, Bytes::new(), true)?;
                                } else {
                                    let n = chunks.len();
                                    for (i, c) in chunks.into_iter().enumerate() {
                                        sent += c.len() as u64;
                                        shim.send_chunk(request, c, i + 1 == n)?;
                                    }
                                }
                            }
                            TreeSelection::Keyed => {
                                // Partition pairs over the trees by key, so
                                // each tree's boxes see a disjoint key range.
                                let mut per_tree: Vec<Vec<Pair>> =
                                    vec![Vec::new(); num_trees as usize];
                                for p in pairs {
                                    let t = (key_hash(&p.key) % num_trees as u64) as usize;
                                    per_tree[t].push(p);
                                }
                                for (t, tp) in per_tree.into_iter().enumerate() {
                                    for c in seqfile::chunk_pairs(&tp, cfg.chunk_bytes) {
                                        sent += c.len() as u64;
                                        shim.send_chunk_keyed(request, t as u64, c)?;
                                    }
                                }
                                shim.finish_request(request)?;
                            }
                        }
                        Ok(sent)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().unwrap())
                .sum::<Result<u64, AggError>>()
        })?;

        // Speculative backups: duplicate some mappers' output verbatim; the
        // boxes must deduplicate it.
        if cfg.speculate_every > 0 {
            for (i, shim) in self.shims.iter().enumerate() {
                if i % cfg.speculate_every == 0 {
                    shim.resend_request(request);
                }
            }
        }

        let agg_result = pending.wait(cfg.timeout)?;
        // Final reduce at the reducer. As in the paper, the reducer always
        // re-reads and reduces the (possibly already final) data it
        // received — a deliberate design decision keeping boxes transparent.
        let merged = seqfile::decode(&agg_result.combined)?;
        let mut output = Vec::new();
        for (key, values) in group_by_key(merged) {
            for p in self.job.reduce(&key, values) {
                output.push(p);
            }
        }
        output.sort();
        let shuffle_reduce_time = t0.elapsed();
        for shim in &self.shims {
            shim.complete_request(request);
        }
        let output_bytes = output.iter().map(|p| p.wire_size() as u64).sum();
        Ok(JobResult {
            output,
            map_time,
            shuffle_reduce_time,
            intermediate_bytes,
            reducer_input_bytes: agg_result.master_input_bytes as u64,
            output_bytes,
        })
    }
}

impl MRCluster {
    /// Run one job with `reducers` reduce partitions: mappers hash-partition
    /// their intermediate pairs (Hadoop's hash partitioner) and each
    /// partition is shuffled, aggregated on-path and reduced as its own
    /// platform request, concurrently. Returns the merged output plus the
    /// slowest partition's shuffle+reduce time.
    pub fn run_partitioned(
        &self,
        inputs: Vec<Vec<Bytes>>,
        reducers: usize,
        cfg: &JobConfig,
    ) -> Result<JobResult, AggError> {
        assert!(reducers >= 1);
        assert_eq!(
            self.selection,
            TreeSelection::PerRequest,
            "partitioned runs use per-request trees"
        );
        assert_eq!(inputs.len(), self.shims.len(), "one input split per mapper");
        if reducers == 1 {
            return self.run(inputs, cfg);
        }
        let t_map = Instant::now();
        // Map phase once; partition each mapper's output by reducer.
        let mapped: Vec<Vec<Vec<Pair>>> = std::thread::scope(|s| {
            let handles: Vec<_> = inputs
                .iter()
                .map(|split| {
                    let job = self.job.clone();
                    s.spawn(move || {
                        let mut pairs = Vec::new();
                        for record in split {
                            job.map(record, &mut |p| pairs.push(p));
                        }
                        if cfg.map_side_combine {
                            pairs = combine_pairs(job.as_ref(), pairs);
                        }
                        crate::shuffle::partition(pairs, reducers)
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        let map_time = t_map.elapsed();

        // Shuffle + reduce each partition concurrently as its own request.
        let t0 = Instant::now();
        let results: Vec<Result<JobResult, AggError>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..reducers)
                .map(|r| {
                    let mapped = &mapped;
                    s.spawn(move || {
                        let partition_inputs: Vec<Vec<Pair>> =
                            mapped.iter().map(|m| m[r].clone()).collect();
                        self.shuffle_reduce(
                            partition_inputs,
                            &JobConfig {
                                request_id: cfg.request_id.wrapping_mul(1_000) + r as u64,
                                map_side_combine: false,
                                ..cfg.clone()
                            },
                        )
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        let mut output = Vec::new();
        let mut intermediate = 0;
        let mut reducer_in = 0;
        let mut slowest = Duration::ZERO;
        for r in results {
            let r = r?;
            output.extend(r.output);
            intermediate += r.intermediate_bytes;
            reducer_in += r.reducer_input_bytes;
            slowest = slowest.max(r.shuffle_reduce_time);
        }
        output.sort();
        let _ = t0;
        let output_bytes = output.iter().map(|p| p.wire_size() as u64).sum();
        Ok(JobResult {
            output,
            map_time,
            shuffle_reduce_time: slowest,
            intermediate_bytes: intermediate,
            reducer_input_bytes: reducer_in,
            output_bytes,
        })
    }

    /// Shuffle pre-mapped pairs and reduce (shared by `run_partitioned`).
    fn shuffle_reduce(
        &self,
        mapped: Vec<Vec<Pair>>,
        cfg: &JobConfig,
    ) -> Result<JobResult, AggError> {
        let request = cfg.request_id;
        let pending = self.master.register_request(request, self.shims.len());
        let t0 = Instant::now();
        let intermediate_bytes: u64 = std::thread::scope(|s| {
            let handles: Vec<_> = mapped
                .into_iter()
                .zip(&self.shims)
                .map(|(pairs, shim)| {
                    s.spawn(move || -> Result<u64, AggError> {
                        let mut sent = 0u64;
                        let chunks = seqfile::chunk_pairs(&pairs, cfg.chunk_bytes);
                        if chunks.is_empty() {
                            shim.send_chunk(request, Bytes::new(), true)?;
                        } else {
                            let n = chunks.len();
                            for (i, c) in chunks.into_iter().enumerate() {
                                sent += c.len() as u64;
                                shim.send_chunk(request, c, i + 1 == n)?;
                            }
                        }
                        Ok(sent)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().unwrap())
                .sum::<Result<u64, AggError>>()
        })?;
        let agg_result = pending.wait(cfg.timeout)?;
        let merged = seqfile::decode(&agg_result.combined)?;
        let mut output = Vec::new();
        for (key, values) in group_by_key(merged) {
            output.extend(self.job.reduce(&key, values));
        }
        output.sort();
        let shuffle_reduce_time = t0.elapsed();
        for shim in &self.shims {
            shim.complete_request(request);
        }
        let output_bytes = output.iter().map(|p| p.wire_size() as u64).sum();
        Ok(JobResult {
            output,
            map_time: Duration::ZERO,
            shuffle_reduce_time,
            intermediate_bytes,
            reducer_input_bytes: agg_result.master_input_bytes as u64,
            output_bytes,
        })
    }
}

/// One-shot convenience: launch an [`MRCluster`] on the deployment and run
/// a single job.
pub fn run_job(
    deployment: &mut NetAggDeployment,
    job: Arc<dyn Job>,
    inputs: Vec<Vec<Bytes>>,
    cfg: &JobConfig,
) -> Result<JobResult, AggError> {
    let cluster = MRCluster::launch(deployment, job, TreeSelection::PerRequest, 1.0);
    cluster.run(inputs, cfg)
}
