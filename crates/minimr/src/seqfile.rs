//! Sequence-file-style binary key/value serialisation.
//!
//! Records are `[key_len u32][key][val_len u32][val]`, concatenated. Two
//! readers are provided:
//!
//! * [`decode`] — strict: the buffer must contain whole records (what agg
//!   boxes use, since shims cut chunks at record boundaries);
//! * [`SeqChunkDecoder`] — incremental: tolerates records split across
//!   arbitrary chunk boundaries by carrying the partial tail to the next
//!   chunk, the situation the paper's Hadoop deserialiser must handle when
//!   chunks are cut at byte granularity.

use crate::types::Pair;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use netagg_core::AggError;

/// Append one record.
pub fn encode_record(dst: &mut BytesMut, pair: &Pair) {
    dst.put_u32(pair.key.len() as u32);
    dst.put_slice(&pair.key);
    dst.put_u32(pair.value.len() as u32);
    dst.put_slice(&pair.value);
}

/// Serialise a batch of pairs.
pub fn encode(pairs: &[Pair]) -> Bytes {
    let size: usize = pairs.iter().map(Pair::wire_size).sum();
    let mut b = BytesMut::with_capacity(size);
    for p in pairs {
        encode_record(&mut b, p);
    }
    b.freeze()
}

/// Strict decode: the payload must contain exactly whole records.
pub fn decode(payload: &Bytes) -> Result<Vec<Pair>, AggError> {
    let mut src = payload.clone();
    let mut out = Vec::new();
    while src.has_remaining() {
        out.push(decode_one(&mut src)?);
    }
    Ok(out)
}

fn decode_one(src: &mut Bytes) -> Result<Pair, AggError> {
    if src.remaining() < 4 {
        return Err(AggError::Corrupt("truncated key length".into()));
    }
    let klen = src.get_u32() as usize;
    if src.remaining() < klen + 4 {
        return Err(AggError::Corrupt("truncated key/value length".into()));
    }
    let key = src.split_to(klen);
    let vlen = src.get_u32() as usize;
    if src.remaining() < vlen {
        return Err(AggError::Corrupt("truncated value".into()));
    }
    let value = src.split_to(vlen);
    Ok(Pair { key, value })
}

/// Incremental decoder tolerating records split across chunks.
#[derive(Debug, Default)]
pub struct SeqChunkDecoder {
    carry: BytesMut,
}

impl SeqChunkDecoder {
    /// Create an empty decoder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Feed one chunk; returns the whole records now available. A record
    /// straddling the chunk end is buffered until the next feed.
    pub fn feed(&mut self, chunk: &[u8]) -> Result<Vec<Pair>, AggError> {
        self.carry.extend_from_slice(chunk);
        let mut out = Vec::new();
        loop {
            let avail = self.carry.len();
            if avail < 4 {
                break;
            }
            let klen =
                u32::from_be_bytes([self.carry[0], self.carry[1], self.carry[2], self.carry[3]])
                    as usize;
            if avail < 4 + klen + 4 {
                break;
            }
            let vlen = u32::from_be_bytes([
                self.carry[4 + klen],
                self.carry[5 + klen],
                self.carry[6 + klen],
                self.carry[7 + klen],
            ]) as usize;
            if avail < 8 + klen + vlen {
                break;
            }
            self.carry.advance(4);
            let key = self.carry.split_to(klen).freeze();
            self.carry.advance(4);
            let value = self.carry.split_to(vlen).freeze();
            out.push(Pair { key, value });
        }
        Ok(out)
    }

    /// Bytes of the incomplete trailing record still buffered.
    pub fn pending(&self) -> usize {
        self.carry.len()
    }

    /// The stream is finished; error if a partial record remains.
    pub fn finish(&self) -> Result<(), AggError> {
        if self.carry.is_empty() {
            Ok(())
        } else {
            Err(AggError::Corrupt(format!(
                "{} bytes of partial record at end of stream",
                self.carry.len()
            )))
        }
    }
}

/// Split a batch of pairs into chunks of at most `target` serialised bytes,
/// always cutting at record boundaries (what the worker shims ship).
pub fn chunk_pairs(pairs: &[Pair], target: usize) -> Vec<Bytes> {
    let mut chunks = Vec::new();
    let mut current = BytesMut::new();
    for p in pairs {
        if !current.is_empty() && current.len() + p.wire_size() > target {
            chunks.push(current.split().freeze());
        }
        encode_record(&mut current, p);
    }
    if !current.is_empty() {
        chunks.push(current.freeze());
    }
    chunks
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn pair(k: &str, v: &str) -> Pair {
        Pair::new(k.to_string(), v.to_string())
    }

    #[test]
    fn encode_decode_roundtrip() {
        let pairs = vec![pair("a", "1"), pair("bb", ""), pair("", "x")];
        assert_eq!(decode(&encode(&pairs)).unwrap(), pairs);
    }

    #[test]
    fn strict_decode_rejects_partial_record() {
        let pairs = vec![pair("key", "value")];
        let enc = encode(&pairs);
        for cut in 1..enc.len() {
            let partial = enc.slice(0..cut);
            assert!(decode(&partial).is_err(), "cut at {cut} should fail");
        }
    }

    #[test]
    fn chunk_decoder_handles_arbitrary_splits() {
        let pairs: Vec<Pair> = (0..50)
            .map(|i| pair(&format!("key{i}"), &format!("value-{i}")))
            .collect();
        let enc = encode(&pairs);
        // Feed in awkward 7-byte slices.
        let mut dec = SeqChunkDecoder::new();
        let mut got = Vec::new();
        for chunk in enc.chunks(7) {
            got.extend(dec.feed(chunk).unwrap());
        }
        dec.finish().unwrap();
        assert_eq!(got, pairs);
    }

    #[test]
    fn chunk_decoder_reports_dangling_tail() {
        let enc = encode(&[pair("k", "v")]);
        let mut dec = SeqChunkDecoder::new();
        dec.feed(&enc[..enc.len() - 1]).unwrap();
        assert!(dec.pending() > 0);
        assert!(dec.finish().is_err());
        dec.feed(&enc[enc.len() - 1..]).unwrap();
        assert!(dec.finish().is_ok());
    }

    #[test]
    fn chunking_respects_target_and_boundaries() {
        let pairs: Vec<Pair> = (0..100)
            .map(|i| pair(&format!("k{i}"), "0123456789"))
            .collect();
        let chunks = chunk_pairs(&pairs, 64);
        assert!(chunks.len() > 1);
        let mut all = Vec::new();
        for c in &chunks {
            // Every chunk decodes standalone: cuts are at record boundaries.
            all.extend(decode(c).unwrap());
        }
        assert_eq!(all, pairs);
        for c in &chunks[..chunks.len() - 1] {
            assert!(c.len() <= 64 + 30, "chunk of {} bytes", c.len());
        }
    }

    #[test]
    fn oversized_record_gets_its_own_chunk() {
        let big = pair("k", &"x".repeat(1000));
        let chunks = chunk_pairs(&[pair("a", "b"), big.clone()], 64);
        assert_eq!(chunks.len(), 2);
        assert_eq!(decode(&chunks[1]).unwrap(), vec![big]);
    }

    proptest! {
        #[test]
        fn prop_roundtrip(pairs in proptest::collection::vec(
            (proptest::collection::vec(any::<u8>(), 0..20),
             proptest::collection::vec(any::<u8>(), 0..40)),
            0..30
        )) {
            let pairs: Vec<Pair> = pairs
                .into_iter()
                .map(|(k, v)| Pair::new(k, v))
                .collect();
            prop_assert_eq!(decode(&encode(&pairs)).unwrap(), pairs);
        }

        #[test]
        fn prop_chunk_decoder_any_split(
            pairs in proptest::collection::vec(
                (proptest::collection::vec(any::<u8>(), 0..10),
                 proptest::collection::vec(any::<u8>(), 0..10)),
                1..20
            ),
            split in 1usize..32
        ) {
            let pairs: Vec<Pair> = pairs
                .into_iter()
                .map(|(k, v)| Pair::new(k, v))
                .collect();
            let enc = encode(&pairs);
            let mut dec = SeqChunkDecoder::new();
            let mut got = Vec::new();
            for chunk in enc.chunks(split) {
                got.extend(dec.feed(chunk).unwrap());
            }
            dec.finish().unwrap();
            prop_assert_eq!(got, pairs);
        }

        #[test]
        fn prop_chunking_preserves_pairs(
            n in 1usize..80,
            target in 16usize..256
        ) {
            let pairs: Vec<Pair> = (0..n)
                .map(|i| Pair::new(format!("key-{i}"), vec![i as u8; i % 17]))
                .collect();
            let chunks = chunk_pairs(&pairs, target);
            let mut all = Vec::new();
            for c in &chunks {
                all.extend(decode(c).unwrap());
            }
            prop_assert_eq!(all, pairs);
        }
    }
}
