//! Closure-based job construction: define a map/reduce job from three
//! functions without implementing [`Job`] by hand.
//!
//! ```
//! use bytes::Bytes;
//! use minimr::job_fn::FnJob;
//! use minimr::types::{parse_u64, u64_value, Pair};
//!
//! let line_count = FnJob::new("line-count")
//!     .with_map(|_record, emit| emit(Pair::new("lines", u64_value(1))))
//!     .with_combine(|_key, values| {
//!         vec![u64_value(values.iter().filter_map(|v| parse_u64(v)).sum())]
//!     })
//!     .with_reduce(|key, values| {
//!         let total: u64 = values.iter().filter_map(|v| parse_u64(v)).sum();
//!         vec![Pair::new(key.to_vec(), u64_value(total))]
//!     });
//! let mut pairs = Vec::new();
//! use minimr::job::Job;
//! line_count.map(b"hello", &mut |p| pairs.push(p));
//! assert_eq!(pairs.len(), 1);
//! ```

use crate::job::Job;
use crate::types::Pair;
use bytes::Bytes;

type MapFn = dyn Fn(&[u8], &mut dyn FnMut(Pair)) + Send + Sync;
type CombineFn = dyn Fn(&[u8], Vec<Bytes>) -> Vec<Bytes> + Send + Sync;
type ReduceFn = dyn Fn(&[u8], Vec<Bytes>) -> Vec<Pair> + Send + Sync;

/// A [`Job`] assembled from closures.
pub struct FnJob {
    name: &'static str,
    map_fn: Box<MapFn>,
    combine_fn: Option<Box<CombineFn>>,
    reduce_fn: Option<Box<ReduceFn>>,
}

impl FnJob {
    /// Start building a job; `map` must be provided before use, `combine`
    /// defaults to identity (no reduction) and `reduce` defaults to
    /// emitting `(key, value)` pairs unchanged.
    pub fn new(name: &'static str) -> Self {
        Self {
            name,
            map_fn: Box::new(|_, _| {}),
            combine_fn: None,
            reduce_fn: None,
        }
    }

    /// Set the map function.
    pub fn with_map(
        mut self,
        f: impl Fn(&[u8], &mut dyn FnMut(Pair)) + Send + Sync + 'static,
    ) -> Self {
        self.map_fn = Box::new(f);
        self
    }

    /// Set the (associative, commutative) combiner.
    pub fn with_combine(
        mut self,
        f: impl Fn(&[u8], Vec<Bytes>) -> Vec<Bytes> + Send + Sync + 'static,
    ) -> Self {
        self.combine_fn = Some(Box::new(f));
        self
    }

    /// Set the final reduce function.
    pub fn with_reduce(
        mut self,
        f: impl Fn(&[u8], Vec<Bytes>) -> Vec<Pair> + Send + Sync + 'static,
    ) -> Self {
        self.reduce_fn = Some(Box::new(f));
        self
    }
}

impl Job for FnJob {
    fn name(&self) -> &'static str {
        self.name
    }

    fn map(&self, record: &[u8], emit: &mut dyn FnMut(Pair)) {
        (self.map_fn)(record, emit)
    }

    fn combine(&self, key: &[u8], values: Vec<Bytes>) -> Vec<Bytes> {
        match &self.combine_fn {
            Some(f) => f(key, values),
            None => values,
        }
    }

    fn reduce(&self, key: &[u8], values: Vec<Bytes>) -> Vec<Pair> {
        match &self.reduce_fn {
            Some(f) => f(key, values),
            None => values
                .into_iter()
                .map(|v| Pair::new(key.to_vec(), v))
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::{JobConfig, MRCluster};
    use crate::types::{parse_u64, u64_value};
    use netagg_core::prelude::*;
    use netagg_core::runtime::NetAggDeployment;
    use netagg_core::shim::TreeSelection;
    use netagg_net::ChannelTransport;
    use std::sync::Arc;

    fn char_count() -> FnJob {
        FnJob::new("char-count")
            .with_map(|record, emit| {
                emit(Pair::new("chars", u64_value(record.len() as u64)));
            })
            .with_combine(|_k, values| {
                vec![u64_value(values.iter().filter_map(|v| parse_u64(v)).sum())]
            })
            .with_reduce(|k, values| {
                let total: u64 = values.iter().filter_map(|v| parse_u64(v)).sum();
                vec![Pair::new(k.to_vec(), u64_value(total))]
            })
    }

    #[test]
    fn fn_job_runs_on_the_platform() {
        let transport = Arc::new(ChannelTransport::new());
        let mut dep = NetAggDeployment::launch(transport, &ClusterSpec::single_rack(3, 1)).unwrap();
        let cluster = MRCluster::launch(
            &mut dep,
            Arc::new(char_count()),
            TreeSelection::PerRequest,
            1.0,
        );
        let inputs = vec![
            vec![Bytes::from_static(b"abcd")],
            vec![Bytes::from_static(b"xy")],
            vec![Bytes::from_static(b"z")],
        ];
        let result = cluster.run(inputs, &JobConfig::default()).unwrap();
        assert_eq!(result.output.len(), 1);
        assert_eq!(parse_u64(&result.output[0].value).unwrap(), 7);
        dep.shutdown();
    }

    #[test]
    fn defaults_are_identity() {
        let j = FnJob::new("noop").with_map(|r, emit| emit(Pair::new(r.to_vec(), "v")));
        let combined = Job::combine(
            &j,
            b"k",
            vec![Bytes::from_static(b"a"), Bytes::from_static(b"b")],
        );
        assert_eq!(combined.len(), 2);
        let reduced = Job::reduce(&j, b"k", combined);
        assert_eq!(reduced.len(), 2);
        assert_eq!(reduced[0].key.as_ref(), b"k");
    }
}
