//! Core key/value types.

use bytes::Bytes;

/// One intermediate or output key/value pair.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Pair {
    /// Key bytes.
    pub key: Bytes,
    /// Value bytes.
    pub value: Bytes,
}

impl Pair {
    /// Construct a pair from anything convertible to [`Bytes`].
    pub fn new(key: impl Into<Bytes>, value: impl Into<Bytes>) -> Self {
        Self {
            key: key.into(),
            value: value.into(),
        }
    }

    /// Wire size under the sequence-file codec.
    pub fn wire_size(&self) -> usize {
        8 + self.key.len() + self.value.len()
    }
}

/// Encode / decode u64 values (counts, sums) as fixed 8-byte big-endian.
pub fn u64_value(v: u64) -> Bytes {
    Bytes::copy_from_slice(&v.to_be_bytes())
}

/// Parse a fixed 8-byte big-endian `u64` value.
pub fn parse_u64(b: &[u8]) -> Option<u64> {
    let arr: [u8; 8] = b.try_into().ok()?;
    Some(u64::from_be_bytes(arr))
}

/// Encode / decode f64 values (sums of revenue, rank mass).
pub fn f64_value(v: f64) -> Bytes {
    Bytes::copy_from_slice(&v.to_be_bytes())
}

/// Parse a fixed 8-byte big-endian `f64` value.
pub fn parse_f64(b: &[u8]) -> Option<f64> {
    let arr: [u8; 8] = b.try_into().ok()?;
    Some(f64::from_be_bytes(arr))
}

/// Compare two job outputs for equivalence: identical keys in identical
/// order, values byte-identical or — for 8-byte values that parse as f64 —
/// equal within a small relative tolerance. Aggregation functions over
/// floats are associative only up to rounding, so different aggregation
/// tree shapes legitimately produce last-ulp differences.
pub fn outputs_equivalent(a: &[Pair], b: &[Pair]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    a.iter().zip(b).all(|(x, y)| {
        if x.key != y.key {
            return false;
        }
        if x.value == y.value {
            return true;
        }
        match (parse_f64(&x.value), parse_f64(&y.value)) {
            (Some(u), Some(v)) => {
                let scale = u.abs().max(v.abs()).max(1e-12);
                (u - v).abs() / scale < 1e-9
            }
            _ => false,
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_codecs_roundtrip() {
        assert_eq!(parse_u64(&u64_value(42)).unwrap(), 42);
        assert_eq!(parse_f64(&f64_value(2.5)).unwrap(), 2.5);
        assert!(parse_u64(b"short").is_none());
        assert!(parse_f64(b"").is_none());
    }

    #[test]
    fn pair_wire_size() {
        let p = Pair::new("key", "value");
        assert_eq!(p.wire_size(), 8 + 3 + 5);
    }

    #[test]
    fn outputs_equivalent_tolerates_float_rounding() {
        let a = vec![Pair::new("k", f64_value(0.1 + 0.2))];
        let b = vec![Pair::new("k", f64_value(0.3))];
        assert!(outputs_equivalent(&a, &b));
        let c = vec![Pair::new("k", f64_value(0.31))];
        assert!(!outputs_equivalent(&a, &c));
        let d = vec![Pair::new("other", f64_value(0.3))];
        assert!(!outputs_equivalent(&a, &d));
        assert!(!outputs_equivalent(&a, &[]));
        // Non-float values must match exactly.
        let x = vec![Pair::new("k", "abc")];
        let y = vec![Pair::new("k", "abd")];
        assert!(!outputs_equivalent(&x, &y));
        assert!(outputs_equivalent(&x, &x.clone()));
    }
}
