//! NetAgg integration: the combiner-based aggregation function agg boxes
//! execute for map/reduce jobs (the paper's Hadoop aggregation wrapper —
//! `Combiner.reduce(Key, List<Value>)` — plus the sequence-file
//! serialiser; together the Hadoop-specific code of Table 1).

use crate::job::{combine_pairs, Job};
use crate::seqfile;
use crate::types::Pair;
use bytes::Bytes;
use netagg_core::{AggError, AggregationFunction};
use std::sync::Arc;

/// Wraps a job's combiner as a platform aggregation function over
/// sequence-file-encoded pair batches.
pub struct CombinerAgg {
    job: Arc<dyn Job>,
}

impl CombinerAgg {
    /// Wrap `job`'s combiner for execution on agg boxes.
    pub fn new(job: Arc<dyn Job>) -> Self {
        Self { job }
    }
}

impl AggregationFunction for CombinerAgg {
    type Item = Vec<Pair>;

    fn deserialize(&self, payload: &Bytes) -> Result<Vec<Pair>, AggError> {
        seqfile::decode(payload)
    }

    fn serialize(&self, item: &Vec<Pair>) -> Bytes {
        seqfile::encode(item)
    }

    fn aggregate(&self, items: Vec<Vec<Pair>>) -> Vec<Pair> {
        let flat: Vec<Pair> = items.into_iter().flatten().collect();
        combine_pairs(self.job.as_ref(), flat)
    }

    fn empty(&self) -> Vec<Pair> {
        Vec::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{parse_u64, u64_value};
    use netagg_core::DynAggregator;

    struct Count;
    impl Job for Count {
        fn name(&self) -> &'static str {
            "count"
        }
        fn map(&self, record: &[u8], emit: &mut dyn FnMut(Pair)) {
            emit(Pair::new(record.to_vec(), u64_value(1)));
        }
        fn combine(&self, _key: &[u8], values: Vec<Bytes>) -> Vec<Bytes> {
            vec![u64_value(values.iter().filter_map(|v| parse_u64(v)).sum())]
        }
        fn reduce(&self, key: &[u8], values: Vec<Bytes>) -> Vec<Pair> {
            self.combine(key, values)
                .into_iter()
                .map(|v| Pair::new(key.to_vec(), v))
                .collect()
        }
    }

    #[test]
    fn combiner_agg_sums_across_batches() {
        let agg = CombinerAgg::new(Arc::new(Count));
        let a = vec![Pair::new("w", u64_value(2)), Pair::new("x", u64_value(1))];
        let b = vec![Pair::new("w", u64_value(3))];
        let out = agg.aggregate(vec![a, b]);
        assert_eq!(out.len(), 2);
        let w = out.iter().find(|p| p.key.as_ref() == b"w").unwrap();
        assert_eq!(parse_u64(&w.value).unwrap(), 5);
    }

    #[test]
    fn serialization_roundtrips_through_dyn_interface() {
        let agg = netagg_core::AggWrapper::new(CombinerAgg::new(Arc::new(Count)));
        let batch = seqfile::encode(&[Pair::new("k", u64_value(1)), Pair::new("k", u64_value(4))]);
        let out = agg
            .aggregate_serialized(vec![batch.clone(), batch])
            .unwrap();
        let pairs = seqfile::decode(&out).unwrap();
        assert_eq!(pairs.len(), 1);
        assert_eq!(parse_u64(&pairs[0].value).unwrap(), 10);
    }

    #[test]
    fn combiner_agg_satisfies_the_platform_laws() {
        let agg = CombinerAgg::new(Arc::new(Count));
        let batches: Vec<Bytes> = [
            vec![Pair::new("w", u64_value(2)), Pair::new("x", u64_value(1))],
            vec![Pair::new("w", u64_value(3)), Pair::new("a", u64_value(9))],
            vec![],
            vec![Pair::new("x", u64_value(4))],
        ]
        .iter()
        .map(|b| seqfile::encode(b))
        .collect();
        netagg_core::laws::assert_laws(&agg, &batches);
    }

    #[test]
    fn aggregation_is_associative() {
        let agg = CombinerAgg::new(Arc::new(Count));
        let mk = |n: u64| vec![Pair::new("k", u64_value(n))];
        let left = agg.aggregate(vec![agg.aggregate(vec![mk(1), mk(2)]), mk(3)]);
        let right = agg.aggregate(vec![mk(1), agg.aggregate(vec![mk(2), mk(3)])]);
        assert_eq!(left, right);
    }
}
