//! Shuffle helpers: key partitioning and tree selection hashing.

use crate::types::Pair;

/// FNV-1a over the key: the hash used both for reducer partitioning and
/// (modulo the tree count) for spreading keys over aggregation trees in
/// keyed mode.
pub fn key_hash(key: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in key {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// Partition pairs over `n` buckets by key hash (Hadoop's hash
/// partitioner). With one reducer the single bucket is everything; the
/// function generalises the framework to multi-reducer jobs.
pub fn partition(pairs: Vec<Pair>, n: usize) -> Vec<Vec<Pair>> {
    let mut out = vec![Vec::new(); n.max(1)];
    let n = n.max(1) as u64;
    for p in pairs {
        let b = (key_hash(&p.key) % n) as usize;
        out[b].push(p);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_key_same_partition() {
        let pairs = vec![
            Pair::new("alpha", "1"),
            Pair::new("beta", "2"),
            Pair::new("alpha", "3"),
        ];
        let parts = partition(pairs, 4);
        let with_alpha: Vec<usize> = parts
            .iter()
            .enumerate()
            .filter(|(_, p)| p.iter().any(|x| x.key.as_ref() == b"alpha"))
            .map(|(i, _)| i)
            .collect();
        assert_eq!(with_alpha.len(), 1);
        assert_eq!(
            parts[with_alpha[0]]
                .iter()
                .filter(|p| p.key.as_ref() == b"alpha")
                .count(),
            2
        );
    }

    #[test]
    fn partition_covers_all_pairs() {
        let pairs: Vec<Pair> = (0..100).map(|i| Pair::new(format!("k{i}"), "")).collect();
        let parts = partition(pairs.clone(), 7);
        assert_eq!(parts.iter().map(Vec::len).sum::<usize>(), 100);
        // Reasonably spread.
        assert!(parts.iter().filter(|p| !p.is_empty()).count() >= 5);
    }

    #[test]
    fn zero_partitions_clamps_to_one() {
        let parts = partition(vec![Pair::new("a", "b")], 0);
        assert_eq!(parts.len(), 1);
        assert_eq!(parts[0].len(), 1);
    }

    #[test]
    fn hash_differs_between_keys() {
        assert_ne!(key_hash(b"a"), key_hash(b"b"));
        assert_eq!(key_hash(b"same"), key_hash(b"same"));
    }
}
