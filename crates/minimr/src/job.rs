//! The user-code interface: map, combine, reduce.

use crate::types::Pair;
use bytes::Bytes;

/// A map/reduce job. The `combine` function must be associative and
/// commutative over each key's values — it is what agg boxes execute
/// on-path (the paper's `Combiner.reduce(Key, List<Value>)` interface).
pub trait Job: Send + Sync + 'static {
    /// Short job name (also the application name on the platform).
    fn name(&self) -> &'static str;

    /// Map one input record to intermediate pairs.
    fn map(&self, record: &[u8], emit: &mut dyn FnMut(Pair));

    /// Partially merge the values of one key. The default implementation
    /// performs no combining (identity), which models jobs like TeraSort
    /// whose data cannot be reduced.
    fn combine(&self, _key: &[u8], values: Vec<Bytes>) -> Vec<Bytes> {
        values
    }

    /// Final reduction of one key at the reducer.
    fn reduce(&self, key: &[u8], values: Vec<Bytes>) -> Vec<Pair>;
}

/// Group a flat pair list by key (sorted), preserving per-key value order.
pub fn group_by_key(pairs: Vec<Pair>) -> Vec<(Bytes, Vec<Bytes>)> {
    let mut map: std::collections::BTreeMap<Bytes, Vec<Bytes>> = std::collections::BTreeMap::new();
    for p in pairs {
        map.entry(p.key).or_default().push(p.value);
    }
    map.into_iter().collect()
}

/// Run the combiner over a flat pair list: group, combine each key,
/// flatten back. This is the aggregation step executed at agg boxes, at
/// map side (Hadoop's map-side combine) and at the reducer merge.
pub fn combine_pairs(job: &dyn Job, pairs: Vec<Pair>) -> Vec<Pair> {
    let mut out = Vec::new();
    for (key, values) in group_by_key(pairs) {
        for v in job.combine(&key, values) {
            out.push(Pair {
                key: key.clone(),
                value: v,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{parse_u64, u64_value};

    struct Count;
    impl Job for Count {
        fn name(&self) -> &'static str {
            "count"
        }
        fn map(&self, record: &[u8], emit: &mut dyn FnMut(Pair)) {
            emit(Pair::new(record.to_vec(), u64_value(1)));
        }
        fn combine(&self, _key: &[u8], values: Vec<Bytes>) -> Vec<Bytes> {
            let sum: u64 = values.iter().filter_map(|v| parse_u64(v)).sum();
            vec![u64_value(sum)]
        }
        fn reduce(&self, key: &[u8], values: Vec<Bytes>) -> Vec<Pair> {
            self.combine(key, values)
                .into_iter()
                .map(|v| Pair::new(key.to_vec(), v))
                .collect()
        }
    }

    #[test]
    fn group_by_key_sorts_and_groups() {
        let pairs = vec![
            Pair::new("b", "1"),
            Pair::new("a", "2"),
            Pair::new("b", "3"),
        ];
        let grouped = group_by_key(pairs);
        assert_eq!(grouped.len(), 2);
        assert_eq!(grouped[0].0.as_ref(), b"a");
        assert_eq!(grouped[1].1.len(), 2);
    }

    #[test]
    fn combine_pairs_reduces_duplicates() {
        let j = Count;
        let pairs = vec![
            Pair::new("x", u64_value(1)),
            Pair::new("x", u64_value(1)),
            Pair::new("y", u64_value(1)),
        ];
        let combined = combine_pairs(&j, pairs);
        assert_eq!(combined.len(), 2);
        let x = combined.iter().find(|p| p.key.as_ref() == b"x").unwrap();
        assert_eq!(parse_u64(&x.value).unwrap(), 2);
    }

    #[test]
    fn default_combine_is_identity() {
        struct NoCombine;
        impl Job for NoCombine {
            fn name(&self) -> &'static str {
                "id"
            }
            fn map(&self, _r: &[u8], _e: &mut dyn FnMut(Pair)) {}
            fn reduce(&self, key: &[u8], values: Vec<Bytes>) -> Vec<Pair> {
                values
                    .into_iter()
                    .map(|v| Pair::new(key.to_vec(), v))
                    .collect()
            }
        }
        let j = NoCombine;
        let pairs = vec![Pair::new("x", "1"), Pair::new("x", "2")];
        let combined = combine_pairs(&j, pairs.clone());
        assert_eq!(combined, pairs);
    }
}
