//! Property-based tests of the map/reduce framework's correctness
//! conditions: combiner associativity, partition stability, and
//! end-to-end agreement between combined and uncombined execution.

use bytes::Bytes;
use minimr::job::{combine_pairs, group_by_key};
use minimr::jobs::{Benchmark, WordCount};
use minimr::shuffle::{key_hash, partition};
use minimr::types::{parse_u64, u64_value, Pair};
use proptest::prelude::*;

fn pairs_strategy() -> impl Strategy<Value = Vec<Pair>> {
    proptest::collection::vec(
        (0u8..20, 1u64..100).prop_map(|(k, v)| Pair::new(format!("key{k}"), u64_value(v))),
        0..60,
    )
}

fn totals(pairs: &[Pair]) -> std::collections::BTreeMap<Bytes, u64> {
    let mut m = std::collections::BTreeMap::new();
    for p in pairs {
        *m.entry(p.key.clone()).or_insert(0) += parse_u64(&p.value).unwrap();
    }
    m
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Combining preserves per-key totals and is idempotent.
    #[test]
    fn combine_preserves_totals(pairs in pairs_strategy()) {
        let before = totals(&pairs);
        let once = combine_pairs(&WordCount, pairs);
        prop_assert_eq!(&totals(&once), &before);
        let twice = combine_pairs(&WordCount, once.clone());
        prop_assert_eq!(&totals(&twice), &before);
        prop_assert_eq!(once.len(), twice.len());
    }

    /// Combining in any grouping yields the same result as combining all
    /// at once (the on-path aggregation correctness condition).
    #[test]
    fn combine_is_associative(pairs in pairs_strategy(), cut_sel in any::<usize>()) {
        let all_at_once = combine_pairs(&WordCount, pairs.clone());
        let cut = cut_sel % (pairs.len() + 1);
        let (a, b) = pairs.split_at(cut);
        let staged = combine_pairs(
            &WordCount,
            combine_pairs(&WordCount, a.to_vec())
                .into_iter()
                .chain(combine_pairs(&WordCount, b.to_vec()))
                .collect(),
        );
        prop_assert_eq!(all_at_once, staged);
    }

    /// Partitioning is stable per key and covers all pairs exactly once.
    #[test]
    fn partition_is_a_partition(pairs in pairs_strategy(), n in 1usize..9) {
        let parts = partition(pairs.clone(), n);
        prop_assert_eq!(parts.len(), n);
        prop_assert_eq!(parts.iter().map(Vec::len).sum::<usize>(), pairs.len());
        for (i, part) in parts.iter().enumerate() {
            for p in part {
                prop_assert_eq!((key_hash(&p.key) % n as u64) as usize, i);
            }
        }
    }

    /// group_by_key loses nothing and sorts keys.
    #[test]
    fn group_by_key_is_lossless(pairs in pairs_strategy()) {
        let grouped = group_by_key(pairs.clone());
        let total: usize = grouped.iter().map(|(_, vs)| vs.len()).sum();
        prop_assert_eq!(total, pairs.len());
        for w in grouped.windows(2) {
            prop_assert!(w[0].0 < w[1].0);
        }
    }
}

/// Map-side combine changes the shuffle volume but never the job output,
/// across all five benchmarks.
#[test]
fn map_side_combine_does_not_change_results() {
    for bench in Benchmark::ALL {
        let job = bench.job();
        let inputs = bench.input(3, 30_000, 9);
        let run = |combine: bool| -> Vec<Pair> {
            // Reference in-process pipeline without the network: map all
            // splits, optionally combine per split, merge, reduce.
            let mut merged = Vec::new();
            for split in &inputs {
                let mut pairs = Vec::new();
                for rec in split {
                    job.map(rec, &mut |p| pairs.push(p));
                }
                if combine {
                    pairs = combine_pairs(job.as_ref(), pairs);
                }
                merged.extend(pairs);
            }
            let mut out = Vec::new();
            for (key, values) in group_by_key(merged) {
                out.extend(job.reduce(&key, values));
            }
            out.sort();
            out
        };
        let with = run(true);
        let without = run(false);
        assert!(
            minimr::types::outputs_equivalent(&with, &without),
            "{}: combine changed the result",
            bench.label()
        );
    }
}
