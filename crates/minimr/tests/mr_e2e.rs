//! End-to-end map/reduce tests: full jobs over the in-process transport,
//! with and without agg boxes, must produce identical outputs; combining
//! on-path must shrink the reducer's input.

use bytes::Bytes;
use minimr::cluster::{JobConfig, MRCluster};
use minimr::jobs::Benchmark;
use minimr::types::parse_u64;
use netagg_core::prelude::*;
use netagg_core::runtime::{DeploymentConfig, NetAggDeployment};
use netagg_core::shim::TreeSelection;
use netagg_net::{ChannelTransport, Transport};
use std::sync::Arc;
use std::time::Duration;

fn deployment(mappers: u32, boxes: u32) -> NetAggDeployment {
    let transport: Arc<dyn Transport> = Arc::new(ChannelTransport::new());
    NetAggDeployment::launch(transport, &ClusterSpec::single_rack(mappers, boxes)).unwrap()
}

fn run(bench: Benchmark, boxes: u32, total_bytes: usize) -> minimr::JobResult {
    let mut dep = deployment(4, boxes);
    let cluster = MRCluster::launch(&mut dep, bench.job(), TreeSelection::PerRequest, 1.0);
    let inputs = bench.input(4, total_bytes, 42);
    let result = cluster
        .run(
            inputs,
            &JobConfig {
                request_id: 1,
                timeout: Duration::from_secs(60),
                ..JobConfig::default()
            },
        )
        .unwrap();
    dep.shutdown();
    result
}

#[test]
fn wordcount_plain_and_netagg_agree() {
    let plain = run(Benchmark::WC, 0, 200_000);
    let netagg = run(Benchmark::WC, 1, 200_000);
    assert_eq!(plain.output, netagg.output);
    assert!(!plain.output.is_empty());
    // Every count is at least 1 and totals match the word count.
    let total: u64 = plain
        .output
        .iter()
        .map(|p| parse_u64(&p.value).unwrap())
        .sum();
    assert!(total > 0);
}

#[test]
fn wordcount_counts_are_exact() {
    // Hand-built input with known counts, no generator involved.
    let mut dep = deployment(4, 1);
    let cluster = MRCluster::launch(
        &mut dep,
        Benchmark::WC.job(),
        TreeSelection::PerRequest,
        1.0,
    );
    let inputs = vec![
        vec![Bytes::from_static(b"a b a")],
        vec![Bytes::from_static(b"b c")],
        vec![Bytes::from_static(b"a")],
        vec![],
    ];
    let result = cluster.run(inputs, &JobConfig::default()).unwrap();
    let count = |k: &[u8]| {
        result
            .output
            .iter()
            .find(|p| p.key.as_ref() == k)
            .map(|p| parse_u64(&p.value).unwrap())
    };
    assert_eq!(count(b"a"), Some(3));
    assert_eq!(count(b"b"), Some(2));
    assert_eq!(count(b"c"), Some(1));
    dep.shutdown();
}

#[test]
fn all_benchmarks_run_both_modes() {
    for bench in Benchmark::ALL {
        let plain = run(bench, 0, 60_000);
        let netagg = run(bench, 1, 60_000);
        assert!(
            minimr::types::outputs_equivalent(&plain.output, &netagg.output),
            "{} outputs differ between plain and netagg",
            bench.label()
        );
        assert!(
            !plain.output.is_empty(),
            "{} produced no output",
            bench.label()
        );
    }
}

#[test]
fn netagg_reduces_reducer_input_for_aggregatable_jobs() {
    let netagg = run(Benchmark::WC, 1, 400_000);
    // The boxes combine on-path, so the reducer receives (far) less than
    // the mappers emitted.
    assert!(
        netagg.reducer_input_bytes < netagg.intermediate_bytes / 2,
        "reducer got {} of {} intermediate bytes",
        netagg.reducer_input_bytes,
        netagg.intermediate_bytes
    );
}

#[test]
fn terasort_cannot_be_reduced() {
    let netagg = run(Benchmark::TS, 1, 100_000);
    // Identity combine: within rounding, everything reaches the reducer.
    assert!(
        netagg.reducer_input_bytes as f64 >= 0.95 * netagg.intermediate_bytes as f64,
        "TS should not reduce: {} vs {}",
        netagg.reducer_input_bytes,
        netagg.intermediate_bytes
    );
}

#[test]
fn keyed_trees_partition_the_shuffle() {
    let transport: Arc<dyn Transport> = Arc::new(ChannelTransport::new());
    let spec = ClusterSpec::single_rack(4, 2).with_trees(2);
    let mut dep = NetAggDeployment::launch_with(
        transport,
        &spec,
        DeploymentConfig {
            selection: TreeSelection::Keyed,
            ..DeploymentConfig::default()
        },
    )
    .unwrap();
    let cluster = MRCluster::launch(&mut dep, Benchmark::WC.job(), TreeSelection::Keyed, 1.0);
    let inputs = Benchmark::WC.input(4, 100_000, 7);
    let keyed = cluster.run(inputs, &JobConfig::default()).unwrap();
    // Compare against the single-tree run: identical output.
    let single = run(Benchmark::WC, 1, 100_000);
    // Different seeds would differ; use same seed/input shape.
    let single_inputs = Benchmark::WC.input(4, 100_000, 7);
    let mut dep2 = deployment(4, 1);
    let cluster2 = MRCluster::launch(
        &mut dep2,
        Benchmark::WC.job(),
        TreeSelection::PerRequest,
        1.0,
    );
    let single = {
        let _ = single;
        cluster2.run(single_inputs, &JobConfig::default()).unwrap()
    };
    assert_eq!(keyed.output, single.output);
    // Both scale-out boxes served chunks.
    for b in dep.boxes() {
        assert!(
            b.stats()
                .messages_in
                .load(std::sync::atomic::Ordering::Relaxed)
                > 0
        );
    }
    dep.shutdown();
    dep2.shutdown();
}

#[test]
fn repeated_jobs_reuse_the_cluster() {
    let mut dep = deployment(4, 1);
    let cluster = MRCluster::launch(
        &mut dep,
        Benchmark::UV.job(),
        TreeSelection::PerRequest,
        1.0,
    );
    let mut last: Option<Vec<minimr::Pair>> = None;
    for req in 1..=3u64 {
        let inputs = Benchmark::UV.input(4, 50_000, 11);
        let r = cluster
            .run(
                inputs,
                &JobConfig {
                    request_id: req,
                    ..JobConfig::default()
                },
            )
            .unwrap();
        if let Some(prev) = &last {
            // UV sums f64 revenue: chunk arrival order at the box varies
            // between runs, so compare up to float rounding.
            assert!(
                minimr::types::outputs_equivalent(prev.as_slice(), &r.output),
                "same input must give the same output"
            );
        }
        last = Some(r.output);
    }
    dep.shutdown();
}

#[test]
fn speculative_duplicates_are_suppressed() {
    let mut dep = deployment(4, 1);
    let cluster = MRCluster::launch(
        &mut dep,
        Benchmark::WC.job(),
        TreeSelection::PerRequest,
        1.0,
    );
    let inputs = Benchmark::WC.input(4, 80_000, 13);

    let baseline = cluster.run(inputs.clone(), &JobConfig::default()).unwrap();
    let speculated = cluster
        .run(
            inputs,
            &JobConfig {
                request_id: 2,
                speculate_every: 2, // mappers 0 and 2 run backups
                ..JobConfig::default()
            },
        )
        .unwrap();
    assert_eq!(
        baseline.output, speculated.output,
        "duplicate backup output must not change counts"
    );
    let dropped = dep.boxes()[0]
        .stats()
        .duplicates_dropped
        .load(std::sync::atomic::Ordering::Relaxed);
    assert!(dropped > 0, "the box should have suppressed duplicates");
    dep.shutdown();
}

#[test]
fn multi_reducer_matches_single_reducer() {
    let mut dep = deployment(4, 2);
    let cluster = MRCluster::launch(
        &mut dep,
        Benchmark::WC.job(),
        TreeSelection::PerRequest,
        1.0,
    );
    let inputs = Benchmark::WC.input(4, 120_000, 17);
    let single = cluster.run(inputs.clone(), &JobConfig::default()).unwrap();
    let multi = cluster
        .run_partitioned(
            inputs,
            4,
            &JobConfig {
                request_id: 9,
                ..JobConfig::default()
            },
        )
        .unwrap();
    assert_eq!(single.output, multi.output);
    // Partitions must not overlap: total pair count is conserved.
    assert_eq!(
        single.output.len(),
        multi
            .output
            .iter()
            .map(|p| &p.key)
            .collect::<std::collections::HashSet<_>>()
            .len()
    );
    dep.shutdown();
}
