//! Property-based checks running the platform's aggregation-law checkers
//! (`netagg_core::laws`) against the map/reduce combiner wrapper, over
//! sequence-file payloads — the byte path agg boxes execute for jobs.
//!
//! `CombinerAgg` over WordCount satisfies every law byte-exactly because
//! `combine_pairs` groups through a `BTreeMap` (canonical key order) and
//! per-key sums are associative and commutative. A deliberately
//! non-associative job is included to prove the harness actually rejects
//! broken combiners.

use bytes::Bytes;
use minimr::job::Job;
use minimr::jobs::WordCount;
use minimr::netagg::CombinerAgg;
use minimr::seqfile;
use minimr::types::{parse_u64, u64_value, Pair};
use netagg_core::laws;
use proptest::prelude::*;
use std::sync::Arc;

/// Serialised mapper batches: 1–6 sequence-file payloads of 0–30 pairs,
/// keys drawn from a small vocabulary so combining actually collapses.
fn payloads_strategy() -> impl Strategy<Value = Vec<Bytes>> {
    let pair = (0u8..12, 1u64..100).prop_map(|(k, v)| Pair::new(format!("word{k}"), u64_value(v)));
    proptest::collection::vec(
        proptest::collection::vec(pair, 0..30).prop_map(|pairs| seqfile::encode(&pairs)),
        1..6,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The WordCount combiner, wrapped exactly as agg boxes run it, keeps
    /// every law at every split point — byte-exact on the sequence-file
    /// encoding.
    #[test]
    fn wordcount_combiner_agg_satisfies_every_law(payloads in payloads_strategy()) {
        laws::assert_laws(&CombinerAgg::new(Arc::new(WordCount)), &payloads);
    }

    /// Tiered combining also preserves per-key totals against a plain
    /// recount of the raw pairs (semantic check on top of the byte check).
    #[test]
    fn tiered_combining_preserves_totals(
        payloads in payloads_strategy(),
        split in any::<usize>(),
    ) {
        let agg = CombinerAgg::new(Arc::new(WordCount));
        let c = laws::check_merge(&agg, &payloads, 1 + split % 4).unwrap();
        prop_assert!(c.holds());
        let mut want = std::collections::BTreeMap::new();
        for p in &payloads {
            for pair in seqfile::decode(p).unwrap() {
                *want.entry(pair.key.clone()).or_insert(0u64) +=
                    parse_u64(&pair.value).unwrap();
            }
        }
        let got: std::collections::BTreeMap<Bytes, u64> = seqfile::decode(&c.actual)
            .unwrap()
            .into_iter()
            .map(|p| (p.key.clone(), parse_u64(&p.value).unwrap()))
            .collect();
        prop_assert_eq!(got, want);
    }
}

/// A job whose combiner averages instead of summing is not associative;
/// the laws harness must reject it (guards against the checker passing
/// everything vacuously).
#[test]
fn laws_checker_rejects_a_non_associative_combiner() {
    struct MeanValue;
    impl Job for MeanValue {
        fn name(&self) -> &'static str {
            "mean"
        }
        fn map(&self, _record: &[u8], _emit: &mut dyn FnMut(Pair)) {}
        fn combine(&self, _key: &[u8], values: Vec<Bytes>) -> Vec<Bytes> {
            let nums: Vec<u64> = values.iter().filter_map(|v| parse_u64(v)).collect();
            let n = nums.len().max(1) as u64;
            vec![u64_value(nums.iter().sum::<u64>() / n)]
        }
        fn reduce(&self, key: &[u8], values: Vec<Bytes>) -> Vec<Pair> {
            self.combine(key, values)
                .into_iter()
                .map(|v| Pair::new(key.to_vec(), v))
                .collect()
        }
    }
    // Asymmetric batch sizes: the mean of per-batch means differs from
    // the flat mean, so the gap cannot cancel out.
    let payloads: Vec<Bytes> = [vec![10u64], vec![20, 90]]
        .iter()
        .map(|vals| {
            seqfile::encode(
                &vals
                    .iter()
                    .map(|&v| Pair::new("k", u64_value(v)))
                    .collect::<Vec<_>>(),
            )
        })
        .collect();
    let v = laws::check_laws(&CombinerAgg::new(Arc::new(MeanValue)), &payloads)
        .unwrap()
        .expect("averaging combiner must violate merge consistency");
    assert_eq!(v.law, "merge consistency");
}
