//! Fluid (flow-level) discrete-event engine with TCP max-min fairness.
//!
//! Between events, every active flow transfers bytes at a constant rate
//! determined by progressive-filling max-min fair allocation over all the
//! resources it traverses (links, box attach links, box processors).
//! Events are flow starts and flow completions; the engine advances in
//! closed form from event to event, so results are exact for the fluid
//! model and independent of any tick size.
//!
//! Aggregation-tree coupling is modelled by *completion gating*: an
//! aggregation point's output flow starts together with its earliest child
//! and cannot complete before every child has delivered its input (the last
//! byte of a streamed aggregate depends on the last input byte). A flow
//! that has pushed all its bytes but still waits for children is *drained*:
//! it stops consuming bandwidth and completes the instant its last child
//! does. This captures pipelined streaming aggregation end-to-end timing
//! while keeping each event's rate allocation a pure max-min problem.

use crate::deployment::BoxPlacement;
use crate::flow::{self, FlowSpec, Resource, SegmentKind};
use crate::topology::Topology;
use crate::ExperimentConfig;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Why an engine refused to run.
#[derive(Debug, Clone, PartialEq)]
pub enum EngineError {
    /// A resource was configured with a non-positive or non-finite
    /// capacity. A zero-capacity resource would give every flow crossing
    /// it a 0/0 = NaN rate, which would then poison every f64 ordering in
    /// the event machinery; it is rejected up front instead.
    InvalidCapacity {
        /// Index into the engine's resource table (links first, then
        /// `[in, out, proc]` per box).
        resource: usize,
        /// The offending capacity value, bytes/s.
        capacity: f64,
    },
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::InvalidCapacity { resource, capacity } => write!(
                f,
                "resource {resource} has invalid capacity {capacity} bytes/s; \
                 capacities must be finite and > 0 (a zero-capacity resource \
                 would yield NaN rates)"
            ),
        }
    }
}

impl std::error::Error for EngineError {}

/// Validate a resource capacity table: every entry finite and > 0.
pub(crate) fn validate_caps(caps: &[f64]) -> Result<(), EngineError> {
    for (resource, &capacity) in caps.iter().enumerate() {
        if !(capacity.is_finite() && capacity > 0.0) {
            return Err(EngineError::InvalidCapacity { resource, capacity });
        }
    }
    Ok(())
}

/// Build the shared resource capacity table for a topology and deployment:
/// fabric links first, then `[in, out, proc]` per agg box.
pub(crate) fn capacity_table(
    topo: &Topology,
    placement: &BoxPlacement,
    cfg: &ExperimentConfig,
) -> Vec<f64> {
    let mut caps: Vec<f64> = topo.links.iter().map(|l| l.capacity).collect();
    for _ in 0..placement.num_boxes() {
        caps.push(cfg.box_link); // in
        caps.push(cfg.box_link); // out
        caps.push(cfg.box_rate); // proc
    }
    caps
}

/// Map a flow resource to its index in the capacity table.
pub(crate) fn resource_index(num_links: usize, r: Resource) -> usize {
    match r {
        Resource::Link(l) => l.0 as usize,
        Resource::BoxIn(b) => num_links + 3 * b.0 as usize,
        Resource::BoxOut(b) => num_links + 3 * b.0 as usize + 1,
        Resource::BoxProc(b) => num_links + 3 * b.0 as usize + 2,
    }
}

/// Completion record of one flow.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct FlowRecord {
    /// Bytes transferred.
    pub size: f64,
    /// Start time, seconds.
    pub start: f64,
    /// Completion time, seconds.
    pub finish: f64,
    /// Role of the segment.
    pub kind: SegmentKind,
    /// Request the flow belonged to (`None` for background).
    pub request: Option<u32>,
}

impl FlowRecord {
    /// Flow completion time (`finish - start`), seconds.
    pub fn fct(&self) -> f64 {
        self.finish - self.start
    }
}

/// Result of one simulation run.
///
/// The determinism fence in `tests/incremental_parity.rs` asserts results
/// are byte-identical (bit-exact f64s) across runs with the same seed.
#[derive(Debug, Clone, serde::Serialize)]
pub struct SimResult {
    /// One record per simulated flow, in expansion order.
    pub records: Vec<FlowRecord>,
    /// Total bytes carried by each fabric link over the run, indexed by
    /// [`crate::topology::LinkId`].
    pub link_bytes: Vec<f64>,
    /// Time at which the last flow completed.
    pub makespan: f64,
}

impl SimResult {
    /// Flow completion times for the given class, sorted ascending.
    pub fn fcts(&self, class: crate::metrics::FlowClass) -> Vec<f64> {
        let mut v: Vec<f64> = self
            .records
            .iter()
            .filter(|r| class.matches(r.kind))
            .map(FlowRecord::fct)
            .collect();
        v.sort_by(f64::total_cmp);
        v
    }

    /// 99th-percentile FCT of a flow class (the paper's headline metric).
    pub fn fct_p99(&self, class: crate::metrics::FlowClass) -> f64 {
        crate::metrics::percentile(&self.fcts(class), 0.99)
    }

    /// Median FCT of a flow class.
    pub fn fct_median(&self, class: crate::metrics::FlowClass) -> f64 {
        crate::metrics::percentile(&self.fcts(class), 0.5)
    }

    /// Completion time of each aggregation request (when its last segment
    /// finished), sorted ascending.
    pub fn request_completion_times(&self) -> Vec<f64> {
        let mut per_req: std::collections::HashMap<u32, f64> = std::collections::HashMap::new();
        for r in &self.records {
            if let Some(q) = r.request {
                let e = per_req.entry(q).or_insert(0.0);
                *e = e.max(r.finish);
            }
        }
        let mut v: Vec<f64> = per_req.into_values().collect();
        v.sort_by(f64::total_cmp);
        v
    }
}

/// The reference simulation engine: owns the resource capacity table.
///
/// This is the retained *global* solver: it recomputes progressive-filling
/// max-min fairness over every active flow at every event. It is exact and
/// simple but quadratic in the number of flows, so it tops out near the
/// paper's 1,024-server scale. [`crate::incremental::IncrementalEngine`]
/// is the production engine; this one is kept as the oracle the parity
/// suite (`tests/incremental_parity.rs`) checks the incremental results
/// against, and stays selectable via
/// [`crate::EngineKind::Reference`].
#[derive(Debug)]
pub struct Engine {
    /// Capacity of every resource, bytes/s. Layout: fabric links first,
    /// then `[in, out, proc]` per agg box.
    caps: Vec<f64>,
    num_links: usize,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    Pending,
    /// Transferring bytes.
    Active,
    /// All bytes pushed, waiting for children to complete.
    Drained,
    Done,
}

impl Engine {
    /// Build the resource capacity table for a topology and deployment.
    ///
    /// Panics if any resource capacity is non-positive or non-finite; use
    /// [`Engine::try_new`] to handle that case as an error.
    pub fn new(topo: &Topology, placement: &BoxPlacement, cfg: &ExperimentConfig) -> Self {
        Self::try_new(topo, placement, cfg).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Build the engine, rejecting zero/negative/non-finite capacities
    /// (which would otherwise propagate NaN rates into the event queue).
    pub fn try_new(
        topo: &Topology,
        placement: &BoxPlacement,
        cfg: &ExperimentConfig,
    ) -> Result<Self, EngineError> {
        let caps = capacity_table(topo, placement, cfg);
        validate_caps(&caps)?;
        Ok(Self {
            caps,
            num_links: topo.num_links(),
        })
    }

    fn resource_index(&self, r: Resource) -> usize {
        resource_index(self.num_links, r)
    }

    /// Run all flows to completion and return per-flow records plus link
    /// traffic totals.
    pub fn run(&mut self, flows: Vec<FlowSpec>) -> SimResult {
        let n = flows.len();
        let res_lists: Vec<Vec<u32>> = flows
            .iter()
            .map(|f| {
                f.resources
                    .iter()
                    .map(|r| self.resource_index(*r) as u32)
                    .collect()
            })
            .collect();
        // Parent lookup (a flow has at most one parent in an aggregation
        // tree; assert that to catch malformed inputs).
        let mut parent: Vec<Option<u32>> = vec![None; n];
        for (i, f) in flows.iter().enumerate() {
            for &c in &f.children {
                assert!(
                    parent[c as usize].is_none(),
                    "flow {c} has more than one parent"
                );
                parent[c as usize] = Some(i as u32);
            }
        }

        let mut remaining: Vec<f64> = flows.iter().map(|f| f.size).collect();
        let mut state: Vec<State> = vec![State::Pending; n];
        let mut finish: Vec<f64> = vec![0.0; n];
        let mut open_children: Vec<u32> = flows.iter().map(|f| f.children.len() as u32).collect();

        // Starts sorted descending so we can pop the earliest.
        let mut starts: Vec<(f64, u32)> = flows
            .iter()
            .enumerate()
            .map(|(i, f)| (f.start, i as u32))
            .collect();
        starts.sort_by(|a, b| b.0.total_cmp(&a.0));

        let mut t = 0.0f64;
        let mut active: Vec<u32> = Vec::new();
        let mut rates: Vec<f64> = vec![0.0; n];
        let mut alloc = Allocator::new(self.caps.len());
        let mut open = n; // flows not yet Done

        // Completes `f` at time `t`, cascading to drained parents whose last
        // child just finished.
        fn complete(
            mut f: u32,
            t: f64,
            state: &mut [State],
            finish: &mut [f64],
            open_children: &mut [u32],
            parent: &[Option<u32>],
            open: &mut usize,
        ) {
            loop {
                // Completion is idempotent: a flow already recorded as done
                // (e.g. a residual that sat exactly on the epsilon boundary
                // and was classified delivered on two paths) must not be
                // counted twice — that would underflow `open` and corrupt
                // parent accounting.
                if state[f as usize] == State::Done {
                    debug_assert!(false, "flow {f} completed twice");
                    break;
                }
                state[f as usize] = State::Done;
                finish[f as usize] = t;
                *open -= 1;
                match parent[f as usize] {
                    Some(p) => {
                        open_children[p as usize] -= 1;
                        if open_children[p as usize] == 0 && state[p as usize] == State::Drained {
                            f = p;
                        } else {
                            break;
                        }
                    }
                    None => break,
                }
            }
        }

        while open > 0 {
            // Admit flows starting now.
            while let Some(&(s, i)) = starts.last() {
                if s <= t + 1e-12 {
                    starts.pop();
                    let i = i as usize;
                    debug_assert_eq!(state[i], State::Pending);
                    if flow::delivered(remaining[i]) {
                        // Zero-byte flow: treat as immediately drained.
                        if open_children[i] == 0 {
                            complete(
                                i as u32,
                                t,
                                &mut state,
                                &mut finish,
                                &mut open_children,
                                &parent,
                                &mut open,
                            );
                        } else {
                            state[i] = State::Drained;
                        }
                    } else {
                        state[i] = State::Active;
                        active.push(i as u32);
                    }
                } else {
                    break;
                }
            }
            if active.is_empty() {
                match starts.last() {
                    Some(&(s, _)) => {
                        t = t.max(s);
                        continue;
                    }
                    None => {
                        // Only drained flows remain; their children are all
                        // done (otherwise a child would be active/pending),
                        // which the cascade would have completed. Nothing
                        // left to do.
                        debug_assert_eq!(open, 0, "drained flows stuck with open children");
                        break;
                    }
                }
            }

            alloc.waterfill(&active, &res_lists, &self.caps, &mut rates);

            // Earliest event: a completion or the next start.
            let mut dt = f64::INFINITY;
            if let Some(&(s, _)) = starts.last() {
                dt = dt.min(s - t);
            }
            for &fi in &active {
                let f = fi as usize;
                if rates[f] > 0.0 {
                    dt = dt.min(remaining[f] / rates[f]);
                }
            }
            assert!(
                dt.is_finite() && dt >= 0.0,
                "no progress possible at t={t}: {} active flows all stalled",
                active.len()
            );

            t += dt;
            for idx in (0..active.len()).rev() {
                let fi = active[idx];
                let f = fi as usize;
                remaining[f] -= rates[f] * dt;
                if flow::delivered(remaining[f]) {
                    remaining[f] = 0.0;
                    active.swap_remove(idx);
                    if open_children[f] == 0 {
                        complete(
                            fi,
                            t,
                            &mut state,
                            &mut finish,
                            &mut open_children,
                            &parent,
                            &mut open,
                        );
                    } else {
                        state[f] = State::Drained;
                    }
                }
            }
        }

        // Link traffic: every flow pushed all its bytes over each traversed
        // link.
        let mut link_bytes = vec![0.0; self.num_links];
        for f in &flows {
            for r in &f.resources {
                if let Resource::Link(l) = r {
                    link_bytes[l.0 as usize] += f.size;
                }
            }
        }
        let records = flows
            .iter()
            .enumerate()
            .map(|(i, f)| FlowRecord {
                size: f.size,
                start: f.start,
                finish: finish[i],
                kind: f.kind,
                request: f.request,
            })
            .collect();
        SimResult {
            records,
            link_bytes,
            makespan: t,
        }
    }
}

/// Heap entry for the progressive-filling allocator: the water level at
/// which resource `res` saturates, with a version for lazy invalidation.
struct Entry {
    level: f64,
    res: u32,
    version: u32,
}

impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.level == other.level
    }
}
impl Eq for Entry {}
impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Entry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap on level. `total_cmp` gives a genuine total order even
        // for degenerate levels, so the heap invariant can never be broken
        // by an incomparable pair (the old `partial_cmp(..).unwrap_or`
        // silently treated NaN as equal-to-everything, corrupting the
        // heap instead of failing).
        other.level.total_cmp(&self.level)
    }
}

/// Progressive-filling max-min allocator.
///
/// Every resource saturates at water level
/// `(capacity - sum of frozen rates) / live flow count`; the next resource
/// to saturate is popped from a lazily invalidated min-heap, its flows are
/// frozen at that level, and the levels of their other resources are
/// updated. Total cost per allocation is
/// `O(sum of path lengths x log(resources))`.
///
/// Shared with [`crate::incremental`]: the incremental engine re-solves a
/// *suffix* of the allocation by seeding each touched resource's frozen
/// sum with the bandwidth already committed to flows it keeps frozen
/// ([`Allocator::waterfill_seeded`]).
pub(crate) struct Allocator {
    frozen_sum: Vec<f64>,
    live_count: Vec<u32>,
    version: Vec<u32>,
    stamp: Vec<u64>,
    generation: u64,
    users: Vec<Vec<u32>>,
    user_slot: Vec<u32>,
    touched: Vec<u32>,
}

impl Allocator {
    pub(crate) fn new(num_resources: usize) -> Self {
        Self {
            frozen_sum: vec![0.0; num_resources],
            live_count: vec![0; num_resources],
            version: vec![0; num_resources],
            stamp: vec![0; num_resources],
            generation: 0,
            users: Vec::new(),
            user_slot: vec![u32::MAX; num_resources],
            touched: Vec::new(),
        }
    }

    fn saturation_level(&self, r: usize, caps: &[f64]) -> f64 {
        (caps[r] - self.frozen_sum[r]).max(0.0) / self.live_count[r] as f64
    }

    pub(crate) fn waterfill(
        &mut self,
        active: &[u32],
        res_lists: &[Vec<u32>],
        caps: &[f64],
        rates: &mut [f64],
    ) {
        self.waterfill_seeded(active, res_lists, caps, rates, None)
    }

    /// Progressive filling over `active`, optionally seeding each touched
    /// resource's frozen bandwidth. `frozen_base(r)` is the bandwidth of
    /// flows using `r` that this solve treats as permanently frozen below
    /// every level it will assign (the incremental engine's kept prefix);
    /// `None` means no external frozen flows (a full global solve).
    pub(crate) fn waterfill_seeded(
        &mut self,
        active: &[u32],
        res_lists: &[Vec<u32>],
        caps: &[f64],
        rates: &mut [f64],
        frozen_base: Option<&dyn Fn(usize) -> f64>,
    ) {
        self.generation += 1;
        let generation = self.generation;
        self.touched.clear();
        let mut next_slot = 0usize;

        for (pos, &fi) in active.iter().enumerate() {
            for &r in &res_lists[fi as usize] {
                let r = r as usize;
                if self.stamp[r] != generation {
                    self.stamp[r] = generation;
                    self.frozen_sum[r] = match frozen_base {
                        Some(base) => base(r),
                        None => 0.0,
                    };
                    self.live_count[r] = 0;
                    self.version[r] = 0;
                    self.touched.push(r as u32);
                    if next_slot >= self.users.len() {
                        self.users.push(Vec::new());
                    }
                    self.users[next_slot].clear();
                    self.user_slot[r] = next_slot as u32;
                    next_slot += 1;
                }
                self.live_count[r] += 1;
                self.users[self.user_slot[r] as usize].push(pos as u32);
            }
        }

        let mut heap: BinaryHeap<Entry> = BinaryHeap::with_capacity(self.touched.len());
        for &r in &self.touched {
            let r = r as usize;
            heap.push(Entry {
                level: self.saturation_level(r, caps),
                res: r as u32,
                version: 0,
            });
        }

        let mut frozen: Vec<bool> = vec![false; active.len()];
        let mut unfrozen = active.len();

        while unfrozen > 0 {
            let e = heap.pop().expect("live flows imply live resources");
            let r = e.res as usize;
            if self.stamp[r] != generation
                || e.version != self.version[r]
                || self.live_count[r] == 0
            {
                continue; // stale entry
            }
            let level = e.level;
            // Freeze every live flow using r at `level`.
            let slot = self.user_slot[r] as usize;
            let users = std::mem::take(&mut self.users[slot]);
            for &pos in &users {
                let pos = pos as usize;
                if frozen[pos] {
                    continue;
                }
                frozen[pos] = true;
                unfrozen -= 1;
                let fi = active[pos] as usize;
                rates[fi] = level;
                for &r2 in &res_lists[fi] {
                    let r2 = r2 as usize;
                    if r2 == r {
                        continue;
                    }
                    self.frozen_sum[r2] += level;
                    self.live_count[r2] -= 1;
                    self.version[r2] += 1;
                    if self.live_count[r2] > 0 {
                        heap.push(Entry {
                            level: self.saturation_level(r2, caps).max(level),
                            res: r2 as u32,
                            version: self.version[r2],
                        });
                    }
                }
            }
            self.users[slot] = users;
            self.live_count[r] = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deployment::Deployment;
    use crate::flow::FlowSpec;
    use crate::metrics::FlowClass;
    use crate::topology::{Topology, TopologyConfig};
    use crate::workload::WorkloadConfig;
    use crate::{Strategy, GBPS};

    fn engine_for(topo: &Topology) -> Engine {
        let cfg = ExperimentConfig {
            topology: topo.config.clone(),
            workload: WorkloadConfig::default(),
            strategy: Strategy::Direct,
            deployment: Deployment::None,
            box_rate: 9.2 * GBPS,
            box_link: 10.0 * GBPS,
            engine: crate::EngineKind::Reference,
        };
        let placement = BoxPlacement::new(topo, &cfg.deployment);
        Engine::new(topo, &placement, &cfg)
    }

    #[test]
    fn single_flow_runs_at_edge_capacity() {
        let topo = Topology::build(&TopologyConfig::quick());
        let mut eng = engine_for(&topo);
        let route = crate::routing::server_route(&topo, topo.server(0), topo.server(1), 0);
        let size = 1e6;
        let flows = vec![FlowSpec::background(size, route.links, 0.0)];
        let res = eng.run(flows);
        let expected = size / GBPS;
        let fct = res.records[0].fct();
        assert!(
            (fct - expected).abs() < 1e-6 * expected.max(1.0) + 1e-9,
            "fct {fct} expected {expected}"
        );
    }

    #[test]
    fn two_flows_share_a_link_fairly() {
        let topo = Topology::build(&TopologyConfig::quick());
        let mut eng = engine_for(&topo);
        // Both flows target server 1: its downlink is shared.
        let r1 = crate::routing::server_route(&topo, topo.server(0), topo.server(1), 0);
        let r2 = crate::routing::server_route(&topo, topo.server(2), topo.server(1), 0);
        let size = 1e6;
        let flows = vec![
            FlowSpec::background(size, r1.links, 0.0),
            FlowSpec::background(size, r2.links, 0.0),
        ];
        let res = eng.run(flows);
        // Equal flows sharing one bottleneck: both finish at 2x the solo
        // time.
        let expected = 2.0 * size / GBPS;
        for r in &res.records {
            assert!(
                (r.fct() - expected).abs() < 1e-6 * expected,
                "fct {}",
                r.fct()
            );
        }
    }

    #[test]
    fn unequal_flows_complete_in_staggered_fashion() {
        let topo = Topology::build(&TopologyConfig::quick());
        let mut eng = engine_for(&topo);
        let r1 = crate::routing::server_route(&topo, topo.server(0), topo.server(1), 0);
        let r2 = crate::routing::server_route(&topo, topo.server(2), topo.server(1), 0);
        let flows = vec![
            FlowSpec::background(1e6, r1.links, 0.0),
            FlowSpec::background(3e6, r2.links, 0.0),
        ];
        let res = eng.run(flows);
        // Short flow shares the 1 Gbps downlink until it finishes at 2e6
        // bytes total crossing; long flow then runs alone: 4e6 bytes total.
        let t_short = 2e6 / GBPS;
        let t_long = 4e6 / GBPS;
        assert!((res.records[0].fct() - t_short).abs() < 1e-6 * t_short);
        assert!((res.records[1].fct() - t_long).abs() < 1e-6 * t_long);
    }

    #[test]
    fn late_start_is_respected() {
        let topo = Topology::build(&TopologyConfig::quick());
        let mut eng = engine_for(&topo);
        let r1 = crate::routing::server_route(&topo, topo.server(0), topo.server(1), 0);
        let flows = vec![FlowSpec::background(1e6, r1.links, 5.0)];
        let res = eng.run(flows);
        assert!(res.records[0].start == 5.0);
        assert!((res.records[0].finish - (5.0 + 1e6 / GBPS)).abs() < 1e-6);
        assert!((res.records[0].fct() - 1e6 / GBPS).abs() < 1e-6);
    }

    #[test]
    fn completion_gating_delays_aggregation_output() {
        let topo = Topology::build(&TopologyConfig::quick());
        let mut eng = engine_for(&topo);
        // Worker 0 -> aggregator (server 1), aggregator -> master
        // (server 2). The output is half the input, so the output flow
        // drains early but must wait for the inbound flow to finish.
        let rin = crate::routing::server_route(&topo, topo.server(0), topo.server(1), 0);
        let rout = crate::routing::server_route(&topo, topo.server(1), topo.server(2), 0);
        let child = FlowSpec::leaf(
            2e6,
            rin.links
                .into_iter()
                .map(crate::flow::Resource::Link)
                .collect(),
            0.0,
            SegmentKind::WorkerPartial,
            0,
        );
        let parent = FlowSpec {
            size: 1e6,
            resources: rout
                .links
                .into_iter()
                .map(crate::flow::Resource::Link)
                .collect(),
            children: vec![0],
            alpha: 0.5,
            local_input: 0.0,
            start: 0.0,
            kind: SegmentKind::AggregatedOutput,
            request: Some(0),
        };
        let res = eng.run(vec![child, parent]);
        let t_child = 2e6 / GBPS;
        assert!((res.records[0].fct() - t_child).abs() < 1e-6 * t_child);
        // The parent cannot finish before the child feeds it its last byte.
        assert!(
            (res.records[1].finish - t_child).abs() < 1e-6 * t_child,
            "parent finish {} expected {t_child}",
            res.records[1].finish,
        );
    }

    #[test]
    fn gating_cascades_through_deep_chains() {
        let topo = Topology::build(&TopologyConfig::quick());
        let mut eng = engine_for(&topo);
        // w0 -> w1 -> w2 -> w3: a three-hop chain where every downstream
        // flow is smaller; all must finish when the first (largest) does.
        let mut flows = Vec::new();
        let mut prev: Option<u32> = None;
        for i in 0..3u32 {
            let r = crate::routing::server_route(&topo, topo.server(i), topo.server(i + 1), 0);
            let resources = r
                .links
                .into_iter()
                .map(crate::flow::Resource::Link)
                .collect();
            let f = match prev {
                None => FlowSpec::leaf(4e6, resources, 0.0, SegmentKind::WorkerPartial, 0),
                Some(p) => FlowSpec {
                    size: 1e6,
                    resources,
                    children: vec![p],
                    alpha: 0.25,
                    local_input: 0.0,
                    start: 0.0,
                    kind: SegmentKind::AggregatedOutput,
                    request: Some(0),
                },
            };
            prev = Some(flows.len() as u32);
            flows.push(f);
        }
        let res = eng.run(flows);
        let t_first = 4e6 / GBPS;
        for r in &res.records {
            assert!(
                r.finish >= t_first - 1e-9,
                "downstream hop finished {} before its input {t_first}",
                r.finish
            );
        }
    }

    #[test]
    fn box_processing_rate_caps_throughput() {
        let topo = Topology::build(&TopologyConfig::quick());
        let cfg = ExperimentConfig {
            topology: topo.config.clone(),
            workload: WorkloadConfig::default(),
            strategy: Strategy::NetAgg,
            deployment: Deployment::all(),
            box_rate: 0.5 * GBPS, // slower than the edge link
            box_link: 10.0 * GBPS,
            engine: crate::EngineKind::Reference,
        };
        let placement = BoxPlacement::new(&topo, &cfg.deployment);
        let mut eng = Engine::new(&topo, &placement, &cfg);
        let route = crate::routing::server_route(&topo, topo.server(0), topo.server(1), 0);
        let b = placement.box_for(route.switches[0], 0).unwrap();
        let res_list = vec![
            crate::flow::Resource::Link(route.links[0]),
            crate::flow::Resource::BoxIn(b),
            crate::flow::Resource::BoxProc(b),
        ];
        let f = FlowSpec::leaf(1e6, res_list, 0.0, SegmentKind::WorkerPartial, 0);
        let res = eng.run(vec![f]);
        let expected = 1e6 / (0.5 * GBPS);
        assert!(
            (res.records[0].fct() - expected).abs() < 1e-6 * expected,
            "fct {}",
            res.records[0].fct()
        );
    }

    #[test]
    fn full_experiment_terminates_for_every_strategy() {
        for strategy in [
            Strategy::Direct,
            Strategy::RackLevel,
            Strategy::DAry(1),
            Strategy::DAry(2),
            Strategy::NetAgg,
        ] {
            let mut cfg = crate::ExperimentConfig::quick();
            cfg.strategy = strategy;
            let res = crate::run_experiment(&cfg);
            assert!(res.makespan > 0.0, "{strategy:?}");
            assert!(res.fct_p99(FlowClass::All) > 0.0, "{strategy:?}");
            for r in &res.records {
                assert!(
                    r.finish >= r.start - 1e-12,
                    "{strategy:?}: finish {} < start {}",
                    r.finish,
                    r.start
                );
            }
        }
    }

    #[test]
    fn zero_capacity_resource_is_an_error_not_nan() {
        let topo = Topology::build(&TopologyConfig::quick());
        let cfg = ExperimentConfig {
            topology: topo.config.clone(),
            workload: WorkloadConfig::default(),
            strategy: Strategy::NetAgg,
            deployment: Deployment::all(),
            box_rate: 0.0, // would yield 0/0 = NaN rates
            box_link: 10.0 * GBPS,
            engine: crate::EngineKind::Reference,
        };
        let placement = BoxPlacement::new(&topo, &cfg.deployment);
        let err = Engine::try_new(&topo, &placement, &cfg).unwrap_err();
        assert!(matches!(
            err,
            EngineError::InvalidCapacity { capacity, .. } if capacity == 0.0
        ));
        let err = crate::IncrementalEngine::try_new(&topo, &placement, &cfg).unwrap_err();
        assert!(matches!(err, EngineError::InvalidCapacity { .. }));
        assert!(err.to_string().contains("invalid capacity"));
    }

    #[test]
    fn epsilon_boundary_residual_completes_exactly_once() {
        // A flow whose residual sits exactly on the EPS_BYTES boundary is
        // delivered at admission; gating a parent on it must complete both
        // exactly once (a double-complete underflows `open` and is caught
        // by the idempotence guard in `complete`).
        let topo = Topology::build(&TopologyConfig::quick());
        let rin = crate::routing::server_route(&topo, topo.server(0), topo.server(1), 0);
        let rout = crate::routing::server_route(&topo, topo.server(1), topo.server(2), 0);
        let child = FlowSpec::leaf(
            flow::EPS_BYTES,
            rin.links
                .into_iter()
                .map(crate::flow::Resource::Link)
                .collect(),
            0.0,
            SegmentKind::WorkerPartial,
            0,
        );
        let parent = FlowSpec {
            size: 1e6,
            resources: rout
                .links
                .into_iter()
                .map(crate::flow::Resource::Link)
                .collect(),
            children: vec![0],
            alpha: 1.0,
            local_input: 0.0,
            start: 0.0,
            kind: SegmentKind::AggregatedOutput,
            request: Some(0),
        };
        let mut eng = engine_for(&topo);
        let res = eng.run(vec![child.clone(), parent.clone()]);
        assert_eq!(res.records[0].finish, 0.0, "boundary residual is delivered");
        let expected = 1e6 / GBPS;
        assert!((res.records[1].fct() - expected).abs() < 1e-6 * expected);

        // Same boundary classification in the incremental engine.
        let cfg = ExperimentConfig {
            topology: topo.config.clone(),
            workload: WorkloadConfig::default(),
            strategy: Strategy::Direct,
            deployment: Deployment::None,
            box_rate: 9.2 * GBPS,
            box_link: 10.0 * GBPS,
            engine: crate::EngineKind::Incremental,
        };
        let placement = BoxPlacement::new(&topo, &cfg.deployment);
        let mut inc = crate::IncrementalEngine::new(&topo, &placement, &cfg);
        let res = inc.run(vec![child, parent]);
        assert_eq!(res.records[0].finish, 0.0);
        assert!((res.records[1].fct() - expected).abs() < 1e-6 * expected);
    }

    #[test]
    fn residual_just_above_epsilon_is_not_skipped() {
        // One ulp-ish above the boundary: the flow must actually transfer
        // (not be misclassified as delivered), in both engines.
        let topo = Topology::build(&TopologyConfig::quick());
        let route = crate::routing::server_route(&topo, topo.server(0), topo.server(1), 0);
        let size = flow::EPS_BYTES * 1.001;
        let flows = vec![FlowSpec::background(size, route.links, 0.0)];
        let mut eng = engine_for(&topo);
        let res = eng.run(flows.clone());
        assert!(res.records[0].finish > 0.0, "flow above the boundary ran");

        let cfg = ExperimentConfig {
            topology: topo.config.clone(),
            workload: WorkloadConfig::default(),
            strategy: Strategy::Direct,
            deployment: Deployment::None,
            box_rate: 9.2 * GBPS,
            box_link: 10.0 * GBPS,
            engine: crate::EngineKind::Incremental,
        };
        let placement = BoxPlacement::new(&topo, &cfg.deployment);
        let mut inc = crate::IncrementalEngine::new(&topo, &placement, &cfg);
        let res = inc.run(flows);
        assert!(res.records[0].finish > 0.0);
    }

    #[test]
    fn stragglers_terminate_and_delay_completion() {
        let mut cfg = crate::ExperimentConfig::quick();
        cfg.strategy = Strategy::NetAgg;
        cfg.workload.straggler_frac = 0.2;
        cfg.workload.straggler_delay = 0.5;
        let res = crate::run_experiment(&cfg);
        assert!(res.makespan > 0.5, "stragglers push the makespan out");
    }
}
