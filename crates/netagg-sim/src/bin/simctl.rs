//! `simctl` — run a single NetAgg simulation experiment from the command
//! line.
//!
//! ```text
//! simctl [--strategy rack|binary|chain|netagg|direct] [--alpha F]
//!        [--oversub F] [--flows N] [--seed N] [--frac F]
//!        [--box-rate GBPS] [--paper|--quick|--scale10x]
//!        [--engine incremental|naive] [--edge-load F]
//!        [--deployment all|incremental|tor|aggr|core|none]
//!        [--per-switch N] [--stragglers F] [--csv PATH] [--metrics]
//!        [--trace PATH]
//! ```
//!
//! Prints the run's FCT summary, per-class percentiles and link-traffic
//! statistics. `--csv PATH` additionally dumps every simulated flow
//! (kind, request, size, start, finish, fct) for external analysis.
//! `--metrics` appends the run's `sim.*` metrics snapshot as JSON (the
//! contract is documented in DESIGN.md, "Observability"). `--trace PATH`
//! synthesises `span.sim.*` records from the flow log — one
//! `span.sim.request` envelope per aggregation request with its
//! `span.sim.flow` children — and writes Chrome trace-event JSON
//! (DESIGN.md §11).

use netagg_sim::metrics::{self, FlowClass};
use netagg_sim::topology::Tier;
use netagg_sim::{Deployment, EngineKind, ExperimentConfig, Strategy, WorkloadConfig, GBPS};

fn main() {
    let mut cfg = ExperimentConfig::default_scale();
    let mut per_switch = 1u32;
    let mut deployment = String::from("all");
    let mut csv_path: Option<String> = None;
    let mut trace_path: Option<String> = None;
    let mut metrics_json = false;
    let mut edge_load: Option<f64> = None;

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut value = |name: &str| -> String {
            it.next()
                .unwrap_or_else(|| usage(&format!("{name} needs a value")))
                .clone()
        };
        match a.as_str() {
            "--strategy" => {
                cfg.strategy = match value("--strategy").as_str() {
                    "rack" => Strategy::RackLevel,
                    "binary" => Strategy::DAry(2),
                    "chain" => Strategy::DAry(1),
                    "netagg" => Strategy::NetAgg,
                    "direct" => Strategy::Direct,
                    other => usage(&format!("unknown strategy {other}")),
                }
            }
            "--alpha" => cfg.workload.alpha = parse(&value("--alpha")),
            "--oversub" => cfg.topology.oversub = parse(&value("--oversub")),
            "--flows" => cfg.workload.num_flows = parse::<f64>(&value("--flows")) as usize,
            "--seed" => cfg.workload.seed = parse::<f64>(&value("--seed")) as u64,
            "--frac" => cfg.workload.frac_aggregatable = parse(&value("--frac")),
            "--box-rate" => cfg.box_rate = parse::<f64>(&value("--box-rate")) * GBPS,
            "--stragglers" => cfg.workload.straggler_frac = parse(&value("--stragglers")),
            "--per-switch" => per_switch = parse::<f64>(&value("--per-switch")) as u32,
            "--deployment" => deployment = value("--deployment"),
            "--csv" => csv_path = Some(value("--csv")),
            "--trace" => trace_path = Some(value("--trace")),
            "--metrics" => metrics_json = true,
            "--paper" => cfg.topology = netagg_sim::TopologyConfig::paper(),
            "--quick" => cfg.topology = netagg_sim::TopologyConfig::quick(),
            "--scale10x" => cfg.topology = netagg_sim::TopologyConfig::scale10x(),
            "--edge-load" => edge_load = Some(parse(&value("--edge-load"))),
            "--engine" => {
                cfg.engine = match value("--engine").as_str() {
                    "incremental" => EngineKind::Incremental,
                    "naive" | "reference" => EngineKind::Reference,
                    other => usage(&format!("unknown engine {other}")),
                }
            }
            "--help" | "-h" => usage(""),
            other => usage(&format!("unknown argument {other}")),
        }
    }
    if let Some(load) = edge_load {
        // Applied after flag parsing so it sees the final topology choice;
        // overrides --flows.
        cfg.workload.num_flows = WorkloadConfig::for_edge_load(&cfg.topology, load).num_flows;
    }
    cfg.deployment = match deployment.as_str() {
        "all" => Deployment::All { per_switch },
        "incremental" | "aggr" => Deployment::Tiers {
            tiers: vec![Tier::Aggregation],
            per_switch,
        },
        "tor" => Deployment::Tiers {
            tiers: vec![Tier::Tor],
            per_switch,
        },
        "core" => Deployment::Tiers {
            tiers: vec![Tier::Core],
            per_switch,
        },
        "none" => Deployment::None,
        other => usage(&format!("unknown deployment {other}")),
    };

    let t0 = std::time::Instant::now();
    let obs = netagg_obs::MetricsRegistry::new();
    let (result, stats) = netagg_sim::run_experiment_stats_with_obs(&cfg, &obs);
    let elapsed = t0.elapsed();

    println!(
        "strategy {:8}  alpha {:.2}  oversub 1:{:.0}  flows {}  seed {}",
        cfg.strategy.label(),
        cfg.workload.alpha,
        cfg.topology.oversub,
        cfg.workload.num_flows,
        cfg.workload.seed,
    );
    println!(
        "servers {}  switches {}  boxes {}\n",
        cfg.topology.num_servers(),
        cfg.topology.num_switches(),
        netagg_sim::BoxPlacement::new(&netagg_sim::Topology::build(&cfg.topology), &cfg.deployment)
            .num_boxes(),
    );
    println!(
        "{:>12} {:>10} {:>10} {:>10}",
        "percentile", "all", "agg", "bg"
    );
    let classes = [
        FlowClass::All,
        FlowClass::Aggregation,
        FlowClass::Background,
    ];
    let series: Vec<Vec<f64>> = classes.iter().map(|c| result.fcts(*c)).collect();
    for p in [0.50, 0.90, 0.99, 1.0] {
        print!("{:>11}%", (p * 100.0) as u32);
        for s in &series {
            print!(" {:>9.3}ms", metrics::percentile(s, p) * 1e3);
        }
        println!();
    }
    let req = result.request_completion_times();
    println!(
        "\nrequests: {}   completion p50 {:.3} ms   p99 {:.3} ms",
        req.len(),
        metrics::percentile(&req, 0.5) * 1e3,
        metrics::percentile(&req, 0.99) * 1e3,
    );
    let lt = metrics::link_traffic_sorted(&result);
    println!(
        "link traffic: median {:.2} MB   p99 {:.2} MB   busiest {:.2} MB",
        metrics::percentile(&lt, 0.5) / 1e6,
        metrics::percentile(&lt, 0.99) / 1e6,
        lt.last().copied().unwrap_or(0.0) / 1e6,
    );
    println!(
        "makespan {:.3} ms   ({} flows simulated in {elapsed:.2?})",
        result.makespan * 1e3,
        result.records.len(),
    );
    if stats.events() > 0 {
        println!(
            "engine: {} events ({} starts, {} completions) in {elapsed:.2?} = {:.0} events/s   \
             re-solves {} (avg scope {:.1}, max {}, expansions {}, fallbacks {})   \
             stale discards {}",
            stats.events(),
            stats.starts,
            stats.completions,
            stats.events() as f64 / elapsed.as_secs_f64().max(1e-9),
            stats.resolves,
            stats.resolved_flows as f64 / stats.resolves.max(1) as f64,
            stats.max_scope,
            stats.expansions,
            stats.fallbacks,
            stats.stale_discards,
        );
    }

    if let Some(path) = csv_path {
        let mut out = String::from("kind,request,size_bytes,start_s,finish_s,fct_s\n");
        for r in &result.records {
            let request = r.request.map(|q| q.to_string()).unwrap_or_default();
            out.push_str(&format!(
                "{:?},{},{},{},{},{}\n",
                r.kind,
                request,
                r.size,
                r.start,
                r.finish,
                r.fct()
            ));
        }
        match std::fs::write(&path, out) {
            Ok(()) => println!("wrote {} flow records to {path}", result.records.len()),
            Err(e) => usage(&format!("could not write {path}: {e}")),
        }
    }

    if let Some(path) = trace_path {
        let spans = synthesize_spans(&result);
        match std::fs::write(&path, netagg_obs::trace::chrome_trace_json(&spans)) {
            Ok(()) => println!("wrote {} sim spans to {path}", spans.len()),
            Err(e) => usage(&format!("could not write {path}: {e}")),
        }
    }

    if metrics_json {
        println!("\n{}", obs.snapshot().to_json());
    }
}

/// Rebuild §11-style spans from the flow log: per aggregation request a
/// `span.sim.request` envelope (first flow start → last flow finish, span
/// id = trace id so it roots the tree) with one `span.sim.flow` child per
/// flow. Background flows have no request and are not part of any trace.
fn synthesize_spans(result: &netagg_sim::SimResult) -> Vec<netagg_obs::trace::SpanRecord> {
    use netagg_obs::names::spans;
    use netagg_obs::trace::{trace_id, SpanRecord};
    use std::collections::BTreeMap;

    let ns = |secs: f64| (secs.max(0.0) * 1e9) as u64;
    let mut envelopes: BTreeMap<u64, (u64, u64)> = BTreeMap::new();
    let mut out = Vec::new();
    let mut next_span = 1u64;
    for r in &result.records {
        let Some(request) = r.request.map(u64::from) else {
            continue;
        };
        let tid = trace_id(0, request);
        let (start, finish) = (ns(r.start), ns(r.finish));
        let env = envelopes.entry(request).or_insert((start, finish));
        env.0 = env.0.min(start);
        env.1 = env.1.max(finish);
        out.push(SpanRecord {
            span_id: next_span,
            parent_span_id: tid,
            trace_id: tid,
            request,
            name: spans::SIM_FLOW,
            component: format!("sim-{:?}", r.kind).to_lowercase(),
            start_ns: start,
            dur_ns: finish.saturating_sub(start),
        });
        next_span += 1;
    }
    for (request, (start, finish)) in envelopes {
        let tid = trace_id(0, request);
        out.push(SpanRecord {
            span_id: tid,
            parent_span_id: 0,
            trace_id: tid,
            request,
            name: spans::SIM_REQUEST,
            component: "sim".to_string(),
            start_ns: start,
            dur_ns: finish.saturating_sub(start),
        });
    }
    out
}

fn parse<T: std::str::FromStr>(v: &str) -> T {
    v.parse()
        .unwrap_or_else(|_| usage(&format!("could not parse {v}")))
}

fn usage(err: &str) -> ! {
    if !err.is_empty() {
        eprintln!("error: {err}");
    }
    eprintln!(
        "usage: simctl [--strategy rack|binary|chain|netagg|direct] [--alpha F] \
         [--oversub F] [--flows N] [--seed N] [--frac F] [--box-rate GBPS] \
         [--deployment all|incremental|tor|aggr|core|none] [--per-switch N] \
         [--stragglers F] [--paper|--quick|--scale10x] [--engine incremental|naive] \
         [--edge-load F] [--csv PATH] [--metrics] [--trace PATH]"
    );
    std::process::exit(2);
}
