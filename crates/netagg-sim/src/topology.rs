//! Three-tier, multi-rooted data-centre topology.
//!
//! The fabric is a folded Clos modelled after the architectures the paper
//! cites (fat-tree, VL2): `pods` pods, each with `tors_per_pod` top-of-rack
//! switches and `aggs_per_pod` aggregation switches; every ToR connects to
//! every aggregation switch of its pod; aggregation switch `j` of every pod
//! connects to the `j`-th group of core switches. Servers hang off ToRs.
//!
//! Over-subscription is applied at the ToR tier (as in the paper): the
//! aggregate uplink capacity of a ToR is `1/oversub` of its aggregate
//! downlink (server-facing) capacity. Tiers above the ToR are non-blocking
//! relative to the ToR uplinks.

use std::fmt;

/// Index of a node (server or switch) in the topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

/// Index of a *directed* link in the topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LinkId(pub u32);

/// What a node is. Agg boxes are not topology nodes: they are attachment
/// points managed by [`crate::deployment::BoxPlacement`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeKind {
    /// An edge server; `rack` is the index of its ToR switch among ToRs.
    Server {
        /// Rack (ToR) index the server hangs off.
        rack: u32,
    },
    /// Top-of-rack switch.
    Tor {
        /// Pod the switch belongs to.
        pod: u32,
        /// Index among the pod's ToRs.
        idx: u32,
    },
    /// Pod aggregation switch.
    AggSwitch {
        /// Pod the switch belongs to.
        pod: u32,
        /// Index among the pod's aggregation switches.
        idx: u32,
    },
    /// Core switch.
    CoreSwitch {
        /// Index within the core tier.
        idx: u32,
    },
}

/// Tier of a switch, ordered from the edge upwards.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Tier {
    /// Top-of-rack tier (edge).
    Tor,
    /// Pod aggregation tier.
    Aggregation,
    /// Core tier.
    Core,
}

/// A directed link with a fixed capacity in bytes/s.
#[derive(Debug, Clone, Copy)]
pub struct Link {
    /// Transmitting end.
    pub src: NodeId,
    /// Receiving end.
    pub dst: NodeId,
    /// Capacity in bytes/s.
    pub capacity: f64,
}

/// One end of a flow: an edge server or an agg box attached to a switch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Endpoint {
    /// An edge server.
    Server(NodeId),
    /// An agg box, identified by the switch it attaches to and its index
    /// among the boxes at that switch (for scale-out).
    AggBox {
        /// Switch the box attaches to.
        switch: NodeId,
        /// Slot among the boxes at that switch (scale-out).
        slot: u32,
    },
}

impl Endpoint {
    /// The switch this endpoint ultimately hangs off (the ToR for a server).
    pub fn attachment_switch(&self, topo: &Topology) -> NodeId {
        match *self {
            Endpoint::Server(s) => topo.tor_of_server(s),
            Endpoint::AggBox { switch, .. } => switch,
        }
    }
}

impl fmt::Display for Endpoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Endpoint::Server(n) => write!(f, "server{}", n.0),
            Endpoint::AggBox { switch, slot } => write!(f, "box{}@sw{}", slot, switch.0),
        }
    }
}

/// Sizing and link-speed parameters of the fabric.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct TopologyConfig {
    /// Number of pods.
    pub pods: u32,
    /// Top-of-rack switches per pod.
    pub tors_per_pod: u32,
    /// Servers attached to each ToR.
    pub servers_per_tor: u32,
    /// Aggregation switches per pod.
    pub aggs_per_pod: u32,
    /// Core switches; must be a multiple of `aggs_per_pod`.
    pub cores: u32,
    /// Server-to-ToR link capacity, bytes/s.
    pub edge_capacity: f64,
    /// Over-subscription factor at the ToR tier (1.0 = full bisection).
    pub oversub: f64,
}

impl TopologyConfig {
    /// Paper scale: 1 024 servers (16 pods x 4 ToRs x 16 servers),
    /// 1 Gbps edge links, 1:4 over-subscription.
    pub fn paper() -> Self {
        Self {
            pods: 16,
            tors_per_pod: 4,
            servers_per_tor: 16,
            aggs_per_pod: 4,
            cores: 16,
            edge_capacity: crate::GBPS,
            oversub: 4.0,
        }
    }

    /// 10x the paper's server count: 10 240 servers
    /// (32 pods x 10 ToRs x 32 servers), same 1 Gbps edge and 1:4
    /// over-subscription (ROADMAP item 2; the scale target of the
    /// incremental engine and the `repro sim-perf` sweeps).
    pub fn scale10x() -> Self {
        Self {
            pods: 32,
            tors_per_pod: 10,
            servers_per_tor: 32,
            aggs_per_pod: 8,
            cores: 32,
            edge_capacity: crate::GBPS,
            oversub: 4.0,
        }
    }

    /// 256 servers (8 pods x 2 ToRs x 16 servers); same capacity ratios.
    pub fn default_scale() -> Self {
        Self {
            pods: 8,
            tors_per_pod: 2,
            servers_per_tor: 16,
            aggs_per_pod: 2,
            cores: 4,
            edge_capacity: crate::GBPS,
            oversub: 4.0,
        }
    }

    /// 32 servers for fast unit tests.
    pub fn quick() -> Self {
        Self {
            pods: 2,
            tors_per_pod: 2,
            servers_per_tor: 8,
            aggs_per_pod: 2,
            cores: 2,
            edge_capacity: crate::GBPS,
            oversub: 4.0,
        }
    }

    /// Total servers in the fabric.
    pub fn num_servers(&self) -> u32 {
        self.pods * self.tors_per_pod * self.servers_per_tor
    }

    /// Total top-of-rack switches.
    pub fn num_tors(&self) -> u32 {
        self.pods * self.tors_per_pod
    }

    /// Total aggregation switches.
    pub fn num_agg_switches(&self) -> u32 {
        self.pods * self.aggs_per_pod
    }

    /// Total switches across all three tiers.
    pub fn num_switches(&self) -> u32 {
        self.num_tors() + self.num_agg_switches() + self.cores
    }

    /// Capacity of one ToR-to-aggregation uplink, derived from the
    /// over-subscription ratio.
    pub fn uplink_capacity(&self) -> f64 {
        self.servers_per_tor as f64 * self.edge_capacity / (self.aggs_per_pod as f64 * self.oversub)
    }

    /// Capacity of one aggregation-to-core link: sized so that the tier above
    /// the ToRs is non-blocking w.r.t. the ToR uplinks.
    pub fn core_link_capacity(&self) -> f64 {
        let cores_per_agg = self.cores / self.aggs_per_pod;
        self.uplink_capacity() * self.tors_per_pod as f64 / cores_per_agg as f64
    }
}

/// The built fabric: nodes, directed links and the index structures used by
/// [`crate::routing`].
#[derive(Debug, Clone)]
pub struct Topology {
    /// The sizing parameters the fabric was built from.
    pub config: TopologyConfig,
    /// Every node, indexed by [`NodeId`].
    pub nodes: Vec<NodeKind>,
    /// Every directed link, indexed by [`LinkId`].
    pub links: Vec<Link>,
    /// link (a, b) -> LinkId lookup, keyed by `(src, dst)`.
    link_index: std::collections::HashMap<(NodeId, NodeId), LinkId>,
    server_base: u32,
    tor_base: u32,
    agg_base: u32,
    core_base: u32,
}

impl Topology {
    /// Build the fabric from its sizing parameters.
    pub fn build(cfg: &TopologyConfig) -> Self {
        assert!(cfg.pods > 0 && cfg.tors_per_pod > 0 && cfg.servers_per_tor > 0);
        assert!(
            cfg.cores.is_multiple_of(cfg.aggs_per_pod),
            "cores must be a multiple of aggs_per_pod for the grouped core wiring"
        );
        let mut nodes = Vec::new();

        let server_base = 0u32;
        for p in 0..cfg.pods {
            for t in 0..cfg.tors_per_pod {
                let rack = p * cfg.tors_per_pod + t;
                for _ in 0..cfg.servers_per_tor {
                    nodes.push(NodeKind::Server { rack });
                }
            }
        }
        let tor_base = nodes.len() as u32;
        for p in 0..cfg.pods {
            for t in 0..cfg.tors_per_pod {
                nodes.push(NodeKind::Tor { pod: p, idx: t });
            }
        }
        let agg_base = nodes.len() as u32;
        for p in 0..cfg.pods {
            for a in 0..cfg.aggs_per_pod {
                nodes.push(NodeKind::AggSwitch { pod: p, idx: a });
            }
        }
        let core_base = nodes.len() as u32;
        for c in 0..cfg.cores {
            nodes.push(NodeKind::CoreSwitch { idx: c });
        }

        let mut topo = Self {
            config: cfg.clone(),
            nodes,
            links: Vec::new(),
            link_index: std::collections::HashMap::new(),
            server_base,
            tor_base,
            agg_base,
            core_base,
        };

        // Server <-> ToR links.
        for s in 0..cfg.num_servers() {
            let server = NodeId(server_base + s);
            let tor = topo.tor_of_server(server);
            topo.add_duplex(server, tor, cfg.edge_capacity);
        }
        // ToR <-> aggregation links (full mesh within a pod).
        let uplink = cfg.uplink_capacity();
        for p in 0..cfg.pods {
            for t in 0..cfg.tors_per_pod {
                let tor = NodeId(tor_base + p * cfg.tors_per_pod + t);
                for a in 0..cfg.aggs_per_pod {
                    let agg = NodeId(agg_base + p * cfg.aggs_per_pod + a);
                    topo.add_duplex(tor, agg, uplink);
                }
            }
        }
        // Aggregation <-> core links: agg switch `a` of each pod connects to
        // core group `a` (cores [a*g, (a+1)*g) with g = cores / aggs_per_pod).
        let core_cap = cfg.core_link_capacity();
        let group = cfg.cores / cfg.aggs_per_pod;
        for p in 0..cfg.pods {
            for a in 0..cfg.aggs_per_pod {
                let agg = NodeId(agg_base + p * cfg.aggs_per_pod + a);
                for g in 0..group {
                    let core = NodeId(core_base + a * group + g);
                    topo.add_duplex(agg, core, core_cap);
                }
            }
        }
        topo
    }

    fn add_duplex(&mut self, a: NodeId, b: NodeId, capacity: f64) {
        for (src, dst) in [(a, b), (b, a)] {
            let id = LinkId(self.links.len() as u32);
            self.links.push(Link { src, dst, capacity });
            self.link_index.insert((src, dst), id);
        }
    }

    /// Directed link from `src` to `dst`; panics if the pair is not adjacent.
    pub fn link_between(&self, src: NodeId, dst: NodeId) -> LinkId {
        *self
            .link_index
            .get(&(src, dst))
            .unwrap_or_else(|| panic!("no link {}->{}", src.0, dst.0))
    }

    /// Number of directed links.
    pub fn num_links(&self) -> usize {
        self.links.len()
    }

    /// What node `n` is.
    pub fn kind(&self, n: NodeId) -> NodeKind {
        self.nodes[n.0 as usize]
    }

    /// Whether `n` is an edge server.
    pub fn is_server(&self, n: NodeId) -> bool {
        matches!(self.kind(n), NodeKind::Server { .. })
    }

    /// Iterate over all server node ids.
    pub fn servers(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.config.num_servers()).map(move |i| NodeId(self.server_base + i))
    }

    /// Node id of server `idx` (0-based).
    pub fn server(&self, idx: u32) -> NodeId {
        debug_assert!(idx < self.config.num_servers());
        NodeId(self.server_base + idx)
    }

    /// 0-based index of a server node.
    pub fn server_index(&self, n: NodeId) -> u32 {
        debug_assert!(self.is_server(n));
        n.0 - self.server_base
    }

    /// Node id of the ToR switch of `rack`.
    pub fn tor(&self, rack: u32) -> NodeId {
        debug_assert!(rack < self.config.num_tors());
        NodeId(self.tor_base + rack)
    }

    /// Node id of aggregation switch `idx` in `pod`.
    pub fn agg_switch(&self, pod: u32, idx: u32) -> NodeId {
        NodeId(self.agg_base + pod * self.config.aggs_per_pod + idx)
    }

    /// Node id of core switch `idx`.
    pub fn core_switch(&self, idx: u32) -> NodeId {
        NodeId(self.core_base + idx)
    }

    /// The ToR switch a server hangs off.
    pub fn tor_of_server(&self, s: NodeId) -> NodeId {
        match self.kind(s) {
            NodeKind::Server { rack } => NodeId(self.tor_base + rack),
            k => panic!("tor_of_server on non-server {k:?}"),
        }
    }

    /// The rack index of a server.
    pub fn rack_of_server(&self, s: NodeId) -> u32 {
        match self.kind(s) {
            NodeKind::Server { rack } => rack,
            k => panic!("rack_of_server on non-server {k:?}"),
        }
    }

    /// The pod a rack belongs to.
    pub fn pod_of_rack(&self, rack: u32) -> u32 {
        rack / self.config.tors_per_pod
    }

    /// Tier of a switch node; panics on servers.
    pub fn tier(&self, n: NodeId) -> Tier {
        match self.kind(n) {
            NodeKind::Tor { .. } => Tier::Tor,
            NodeKind::AggSwitch { .. } => Tier::Aggregation,
            NodeKind::CoreSwitch { .. } => Tier::Core,
            NodeKind::Server { .. } => panic!("tier of server"),
        }
    }

    /// All switches of a given tier.
    pub fn switches(&self, tier: Tier) -> Vec<NodeId> {
        match tier {
            Tier::Tor => (0..self.config.num_tors())
                .map(|i| NodeId(self.tor_base + i))
                .collect(),
            Tier::Aggregation => (0..self.config.num_agg_switches())
                .map(|i| NodeId(self.agg_base + i))
                .collect(),
            Tier::Core => (0..self.config.cores)
                .map(|i| NodeId(self.core_base + i))
                .collect(),
        }
    }

    /// All switches, ToR tier first.
    pub fn all_switches(&self) -> Vec<NodeId> {
        let mut v = self.switches(Tier::Tor);
        v.extend(self.switches(Tier::Aggregation));
        v.extend(self.switches(Tier::Core));
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_topology_dimensions() {
        let cfg = TopologyConfig::paper();
        let t = Topology::build(&cfg);
        assert_eq!(cfg.num_servers(), 1024);
        assert_eq!(cfg.num_tors(), 64);
        assert_eq!(cfg.num_agg_switches(), 64);
        assert_eq!(cfg.num_switches(), 144);
        assert_eq!(t.nodes.len(), 1024 + 144);
        // servers + tor-agg mesh + agg-core, duplex.
        let expected_links = 2 * (1024 + 64 * 4 + 64 * (16 / 4));
        assert_eq!(t.num_links(), expected_links);
    }

    #[test]
    fn scale10x_topology_dimensions() {
        let cfg = TopologyConfig::scale10x();
        let t = Topology::build(&cfg);
        assert_eq!(cfg.num_servers(), 10_240);
        assert_eq!(cfg.num_tors(), 320);
        assert_eq!(cfg.num_agg_switches(), 256);
        assert_eq!(cfg.num_switches(), 320 + 256 + 32);
        // servers + tor-agg mesh + agg-core, duplex.
        let expected_links = 2 * (10_240 + 320 * 8 + 256 * (32 / 8));
        assert_eq!(t.num_links(), expected_links);
        // Same capacity ratios as the paper fabric.
        let down = cfg.servers_per_tor as f64 * cfg.edge_capacity;
        let up = cfg.aggs_per_pod as f64 * cfg.uplink_capacity();
        assert!((down / up - cfg.oversub).abs() < 1e-9);
    }

    #[test]
    fn oversubscription_ratio_holds() {
        let cfg = TopologyConfig::paper();
        let down = cfg.servers_per_tor as f64 * cfg.edge_capacity;
        let up = cfg.aggs_per_pod as f64 * cfg.uplink_capacity();
        assert!((down / up - cfg.oversub).abs() < 1e-9);
    }

    #[test]
    fn non_blocking_above_tor() {
        let cfg = TopologyConfig::paper();
        // Aggregate capacity into an agg switch from its ToRs equals the
        // aggregate capacity up to its cores.
        let from_tors = cfg.tors_per_pod as f64 * cfg.uplink_capacity();
        let to_cores = (cfg.cores / cfg.aggs_per_pod) as f64 * cfg.core_link_capacity();
        assert!((from_tors - to_cores).abs() < 1e-6);
    }

    #[test]
    fn server_rack_mapping_roundtrip() {
        let t = Topology::build(&TopologyConfig::quick());
        for s in t.servers() {
            let tor = t.tor_of_server(s);
            assert_eq!(t.tier(tor), Tier::Tor);
            let rack = t.rack_of_server(s);
            assert_eq!(t.tor(rack), tor);
        }
    }

    #[test]
    fn links_are_duplex_and_indexed() {
        let t = Topology::build(&TopologyConfig::quick());
        for l in &t.links {
            let fwd = t.link_between(l.src, l.dst);
            let rev = t.link_between(l.dst, l.src);
            assert_ne!(fwd, rev);
            assert!(t.links[rev.0 as usize].capacity == l.capacity);
        }
    }

    #[test]
    #[should_panic]
    fn no_link_between_servers() {
        let t = Topology::build(&TopologyConfig::quick());
        t.link_between(t.server(0), t.server(1));
    }
}
