//! Indexed calendar (bucket) event queue with versioned flow events.
//!
//! The incremental engine schedules one *projected completion* event per
//! active flow. Whenever a rate allocation changes a flow's rate, the old
//! event becomes stale; instead of deleting it from the middle of a heap,
//! the engine bumps the flow's **version** and the queue discards any
//! popped event whose version no longer matches — an O(1) lazy discard,
//! the `version` trick from minim (SNIPPETS.md §2).
//!
//! The queue itself is a classic calendar queue: a ring of time buckets of
//! fixed `width`. An event at absolute time `t` lands in bucket
//! `(t / width) mod buckets`; the queue walks buckets in time order and,
//! inside the current bucket, linearly scans for the minimum event of the
//! current *epoch* (ring revolution). With a width tuned to the mean
//! inter-event gap, pushes are O(1) and pops scan O(1) expected entries —
//! versus O(log n) heap churn with millions of scheduled completions.
//!
//! Determinism: ties on time break on ascending flow id, so identical
//! inputs pop identically regardless of insertion order.

/// A scheduled flow event (projected completion).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Event {
    /// Absolute simulation time, seconds.
    pub time: f64,
    /// Flow the event belongs to.
    pub flow: u32,
    /// Version of the flow's schedule when the event was pushed. If the
    /// flow's current version differs the event is stale and is discarded.
    pub version: u32,
}

/// Calendar queue of versioned flow events.
///
/// `pop_min(versions)` returns the earliest *valid* event — one whose
/// version still matches `versions[flow]` — destroying stale entries it
/// walks over and counting them in [`CalendarQueue::stale_discards`].
#[derive(Debug)]
pub struct CalendarQueue {
    buckets: Vec<Vec<Event>>,
    /// Bucket width, seconds.
    width: f64,
    /// Absolute index (time / width, unwrapped) of the next bucket to scan.
    cursor: u64,
    /// Live (non-discarded, possibly stale) entries in the ring.
    len: usize,
    /// Stale entries discarded since construction.
    stale_discards: u64,
}

impl CalendarQueue {
    /// A queue with `buckets` ring slots of `width` seconds each.
    ///
    /// `width` should approximate the mean gap between *valid* events;
    /// `buckets * width` should cover the typical horizon between now and
    /// the farthest scheduled event, so most events land within one ring
    /// revolution of the cursor.
    pub fn new(buckets: usize, width: f64) -> Self {
        assert!(buckets > 0, "calendar queue needs at least one bucket");
        assert!(
            width.is_finite() && width > 0.0,
            "bucket width must be finite and positive, got {width}"
        );
        Self {
            buckets: vec![Vec::new(); buckets],
            width,
            cursor: 0,
            len: 0,
            stale_discards: 0,
        }
    }

    /// Number of entries currently stored (valid *and* stale-but-unseen).
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no entries are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Total stale entries lazily discarded so far.
    pub fn stale_discards(&self) -> u64 {
        self.stale_discards
    }

    /// Absolute bucket index of time `t`.
    fn abs_bucket(&self, t: f64) -> u64 {
        debug_assert!(t.is_finite() && t >= 0.0, "event time {t} out of range");
        (t / self.width) as u64
    }

    /// Schedule an event. Events in the past relative to the cursor are
    /// clamped into the cursor bucket so they are still found first.
    pub fn push(&mut self, ev: Event) {
        let abs = self.abs_bucket(ev.time).max(self.cursor);
        let slot = (abs % self.buckets.len() as u64) as usize;
        self.buckets[slot].push(ev);
        self.len += 1;
    }

    /// Pop the earliest valid event: minimum `(time, flow)` among entries
    /// whose version matches `versions[flow]`. Stale entries encountered
    /// during the scan are destroyed and counted. Returns `None` when the
    /// queue holds no valid events (it is then fully drained).
    pub fn pop_min(&mut self, versions: &[u32]) -> Option<Event> {
        let nb = self.buckets.len() as u64;
        loop {
            if self.len == 0 {
                return None;
            }
            let mut scanned_any = false;
            // One full revolution starting at the cursor. Inside a bucket,
            // only entries of the cursor's epoch are eligible; later-epoch
            // entries (time >= (cursor + nb) * width) wait a revolution.
            for step in 0..nb {
                let abs = self.cursor + step;
                let slot = (abs % nb) as usize;
                if self.buckets[slot].is_empty() {
                    continue;
                }
                scanned_any = true;
                let epoch_end = (abs + 1) as f64 * self.width;
                let mut best: Option<(f64, u32)> = None;
                let mut i = 0;
                while i < self.buckets[slot].len() {
                    let ev = self.buckets[slot][i];
                    if ev.version != versions[ev.flow as usize] {
                        self.buckets[slot].swap_remove(i);
                        self.len -= 1;
                        self.stale_discards += 1;
                        continue;
                    }
                    // Same-slot entry from a later epoch: not yet eligible
                    // (clamped pushes put past events at the cursor, so
                    // `< epoch_end` keeps them eligible immediately).
                    if ev.time < epoch_end || self.abs_bucket(ev.time).max(self.cursor) <= abs {
                        let key = (ev.time, ev.flow);
                        match best {
                            Some(b) if (b.0, b.1) <= key => {}
                            _ => best = Some(key),
                        }
                    }
                    i += 1;
                }
                if let Some((bt, bf)) = best {
                    // Remove exactly that entry.
                    let pos = self.buckets[slot]
                        .iter()
                        .position(|e| e.time == bt && e.flow == bf)
                        .expect("best event vanished from its bucket");
                    let ev = self.buckets[slot].swap_remove(pos);
                    self.len -= 1;
                    self.cursor = abs;
                    return Some(ev);
                }
                // Bucket held only later-epoch entries; keep walking.
            }
            if self.len == 0 {
                return None;
            }
            // Full revolution found nothing eligible: every remaining valid
            // entry lies beyond one ring span. Jump the cursor straight to
            // the earliest remaining entry's bucket instead of spinning.
            let _ = scanned_any;
            let min_abs = self
                .buckets
                .iter()
                .flatten()
                .map(|e| self.abs_bucket(e.time))
                .min()
                .expect("len > 0 implies an entry exists");
            self.cursor = min_abs.max(self.cursor + nb);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(time: f64, flow: u32, version: u32) -> Event {
        Event {
            time,
            flow,
            version,
        }
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = CalendarQueue::new(16, 0.5);
        let versions = vec![0u32; 4];
        for (t, f) in [(3.2, 0), (0.1, 1), (1.7, 2), (0.9, 3)] {
            q.push(ev(t, f, 0));
        }
        let order: Vec<u32> = std::iter::from_fn(|| q.pop_min(&versions))
            .map(|e| e.flow)
            .collect();
        assert_eq!(order, vec![1, 3, 2, 0]);
    }

    #[test]
    fn stale_events_are_discarded_not_returned() {
        let mut q = CalendarQueue::new(8, 1.0);
        let mut versions = vec![0u32; 2];
        q.push(ev(1.0, 0, 0));
        q.push(ev(2.0, 1, 0));
        versions[0] = 1; // flow 0 rescheduled: its event is stale
        q.push(ev(3.0, 0, 1));
        assert_eq!(q.pop_min(&versions).unwrap().flow, 1);
        let e = q.pop_min(&versions).unwrap();
        assert_eq!((e.flow, e.version), (0, 1));
        assert!(q.pop_min(&versions).is_none());
        assert_eq!(q.stale_discards(), 1);
    }

    #[test]
    fn ties_break_on_flow_id() {
        let mut q = CalendarQueue::new(4, 1.0);
        let versions = vec![0u32; 3];
        q.push(ev(1.0, 2, 0));
        q.push(ev(1.0, 0, 0));
        q.push(ev(1.0, 1, 0));
        let order: Vec<u32> = std::iter::from_fn(|| q.pop_min(&versions))
            .map(|e| e.flow)
            .collect();
        assert_eq!(order, vec![0, 1, 2]);
    }

    #[test]
    fn far_future_events_jump_not_spin() {
        let mut q = CalendarQueue::new(4, 0.001);
        let versions = vec![0u32; 1];
        // 1e6 bucket-widths ahead of the cursor: requires the direct jump.
        q.push(ev(1_000.0, 0, 0));
        let e = q.pop_min(&versions).unwrap();
        assert_eq!(e.flow, 0);
        assert_eq!(e.time, 1_000.0);
    }

    #[test]
    fn same_slot_different_epoch_orders_correctly() {
        // Ring of 4 buckets, width 1: times 0.5 and 4.5 share slot 0.
        let mut q = CalendarQueue::new(4, 1.0);
        let versions = vec![0u32; 2];
        q.push(ev(4.5, 0, 0));
        q.push(ev(0.5, 1, 0));
        assert_eq!(q.pop_min(&versions).unwrap().flow, 1);
        assert_eq!(q.pop_min(&versions).unwrap().flow, 0);
    }

    #[test]
    fn past_events_clamp_to_cursor() {
        let mut q = CalendarQueue::new(4, 1.0);
        let versions = vec![0u32; 2];
        q.push(ev(10.0, 0, 0));
        assert_eq!(q.pop_min(&versions).unwrap().flow, 0);
        // Cursor now sits at t=10's bucket; a t=2 push must still surface.
        q.push(ev(2.0, 1, 0));
        assert_eq!(q.pop_min(&versions).unwrap().flow, 1);
    }

    #[test]
    fn interleaved_push_pop_keeps_order() {
        let mut q = CalendarQueue::new(8, 0.25);
        let versions = vec![0u32; 8];
        q.push(ev(0.3, 0, 0));
        q.push(ev(0.7, 1, 0));
        assert_eq!(q.pop_min(&versions).unwrap().flow, 0);
        q.push(ev(0.5, 2, 0));
        q.push(ev(5.0, 3, 0));
        assert_eq!(q.pop_min(&versions).unwrap().flow, 2);
        assert_eq!(q.pop_min(&versions).unwrap().flow, 1);
        assert_eq!(q.pop_min(&versions).unwrap().flow, 3);
        assert!(q.is_empty());
    }
}
