//! Synthetic workload generator, modelled after the traces the paper uses
//! (Section 4.1): Pareto flow sizes (mean 100 KB, shape 1.05), a power-law
//! number of workers per request, 40 % aggregatable flows, locality-aware
//! worker placement, and optional stragglers (delayed flow starts).

use crate::topology::{NodeId, Topology};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// How flows arrive over time.
///
/// The paper's default is the worst case — everything at `t = 0` — and it
/// reports that dynamic arrival patterns gave comparable results; both are
/// supported so that claim can be checked (`repro ablate-arrivals`).
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum ArrivalProcess {
    /// All flows start at time zero (worst-case contention, the default).
    AllAtOnce,
    /// Requests and background flows arrive as a Poisson process with the
    /// given mean rate (arrivals per second).
    Poisson {
        /// Mean arrivals per second.
        rate: f64,
    },
    /// Uniform arrivals over a window of the given length in seconds.
    Uniform {
        /// Window length in seconds.
        window: f64,
    },
}

/// Workload parameters. Defaults follow Section 4.1 of the paper.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct WorkloadConfig {
    /// Total number of flows (worker partial-result flows + background).
    pub num_flows: usize,
    /// Fraction of flows that belong to aggregation requests (paper: 40 %,
    /// after Facebook traces).
    pub frac_aggregatable: f64,
    /// Aggregation output ratio: output bytes / input bytes at every
    /// aggregation point (paper default 10 %).
    pub alpha: f64,
    /// Mean of the Pareto flow-size distribution, bytes (paper: 100 KB).
    pub pareto_mean: f64,
    /// Pareto shape parameter (paper: 1.05).
    pub pareto_shape: f64,
    /// Hard cap on sampled sizes, bytes, to bound the heavy tail.
    pub size_cap: f64,
    /// Minimum workers per aggregation request.
    pub workers_min: u32,
    /// Maximum workers per aggregation request.
    pub workers_max: u32,
    /// Exponent of the power-law worker-count distribution
    /// (P(w) proportional to w^-exp). The paper cites a power law where the
    /// large majority of requests have few workers; 1.8 gives ~85 % of
    /// requests fewer than 20 workers over [2, 128].
    pub workers_exp: f64,
    /// Fraction of worker flows that straggle (start late).
    pub straggler_frac: f64,
    /// Mean straggler delay in seconds (delays are sampled uniformly in
    /// [0.5, 1.5] x this mean, following the spread reported in the
    /// straggler literature the paper cites).
    pub straggler_delay: f64,
    /// Flow arrival process.
    pub arrivals: ArrivalProcess,
    /// RNG seed; identical seeds reproduce identical workloads.
    pub seed: u64,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        Self {
            num_flows: 2000,
            frac_aggregatable: 0.4,
            alpha: 0.1,
            pareto_mean: 100e3,
            pareto_shape: 1.05,
            size_cap: 50e6,
            workers_min: 2,
            workers_max: 128,
            workers_exp: 1.8,
            straggler_frac: 0.0,
            straggler_delay: 1.0,
            arrivals: ArrivalProcess::AllAtOnce,
            seed: 42,
        }
    }
}

impl WorkloadConfig {
    /// Flows per server of the default configuration (2 000 flows on the
    /// 256-server default-scale fabric): the unit of "edge load" for the
    /// scale sweeps.
    pub const FLOWS_PER_SERVER: f64 = 2000.0 / 256.0;

    /// A workload whose flow count scales with the fabric: `edge_load` x
    /// [`Self::FLOWS_PER_SERVER`] flows per server, so `edge_load = 1.0`
    /// offers the same per-server demand as the default configuration on
    /// any topology (the x-axis of the `repro sim-perf` edge-load sweep).
    pub fn for_edge_load(topo: &crate::topology::TopologyConfig, edge_load: f64) -> Self {
        assert!(
            edge_load.is_finite() && edge_load > 0.0,
            "edge load must be finite and positive, got {edge_load}"
        );
        Self {
            num_flows: (edge_load * Self::FLOWS_PER_SERVER * topo.num_servers() as f64).round()
                as usize,
            ..Self::default()
        }
    }
}

impl ArrivalProcess {
    /// Base start time of the next request/flow.
    fn next_start(&self, rng: &mut StdRng, clock: &mut f64) -> f64 {
        match self {
            ArrivalProcess::AllAtOnce => 0.0,
            ArrivalProcess::Poisson { rate } => {
                let u: f64 = rng.random::<f64>().max(1e-12);
                *clock += -u.ln() / rate;
                *clock
            }
            ArrivalProcess::Uniform { window } => rng.random::<f64>() * window,
        }
    }
}

/// One partition/aggregation request: a master plus its workers, each with a
/// partial-result size and a start time (non-zero for stragglers).
#[derive(Debug, Clone)]
pub struct Request {
    /// Request identifier (also the ECMP/tree hash input).
    pub id: u32,
    /// Master (frontend / reducer) server.
    pub master: NodeId,
    /// Worker servers producing partial results.
    pub workers: Vec<NodeId>,
    /// Partial-result size of each worker, bytes.
    pub sizes: Vec<f64>,
    /// Start time of each worker's flow, seconds.
    pub starts: Vec<f64>,
}

/// A point-to-point non-aggregatable flow.
#[derive(Debug, Clone)]
pub struct BackgroundFlow {
    /// Source server.
    pub src: NodeId,
    /// Destination server.
    pub dst: NodeId,
    /// Bytes to transfer.
    pub size: f64,
    /// Start time, seconds.
    pub start: f64,
}

/// A generated workload.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Partition/aggregation requests.
    pub requests: Vec<Request>,
    /// Non-aggregatable point-to-point flows.
    pub background: Vec<BackgroundFlow>,
}

impl Workload {
    /// Total number of flows the workload will expand to, *before* any
    /// aggregation strategy adds aggregator-output segments.
    pub fn num_worker_flows(&self) -> usize {
        self.requests.iter().map(|r| r.workers.len()).sum()
    }

    /// Generate a workload for `topo` (deterministic under `cfg.seed`).
    pub fn generate(topo: &Topology, cfg: &WorkloadConfig) -> Self {
        assert!(cfg.workers_min >= 2, "a request needs at least two workers");
        assert!(
            (0.0..=1.0).contains(&cfg.frac_aggregatable),
            "frac_aggregatable must be a fraction"
        );
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let num_servers = topo.config.num_servers();
        let target_agg = (cfg.num_flows as f64 * cfg.frac_aggregatable) as usize;

        let mut requests = Vec::new();
        let mut agg_flows = 0usize;
        let mut next_id = 0u32;
        let mut clock = 0.0f64;
        // A request cannot have more workers than there are servers besides
        // the master.
        let max_workers = cfg.workers_max.min(num_servers - 1);
        assert!(
            max_workers >= cfg.workers_min,
            "topology too small for the configured minimum fan-in"
        );
        while agg_flows < target_agg {
            let remaining = target_agg - agg_flows;
            let mut w = sample_power_law(&mut rng, cfg.workers_min, max_workers, cfg.workers_exp);
            // Keep total flow budget roughly exact.
            w = w.min(remaining.max(cfg.workers_min as usize) as u32);
            if (w as usize) > remaining && remaining >= cfg.workers_min as usize {
                w = remaining as u32;
            }
            let arrival = cfg.arrivals.next_start(&mut rng, &mut clock);
            let req = place_request(topo, &mut rng, next_id, w, num_servers, cfg, arrival);
            agg_flows += req.workers.len();
            requests.push(req);
            next_id += 1;
        }

        let num_background = cfg.num_flows.saturating_sub(agg_flows);
        let mut background = Vec::with_capacity(num_background);
        for _ in 0..num_background {
            let src = topo.server(rng.random_range(0..num_servers));
            let mut dst = topo.server(rng.random_range(0..num_servers));
            while dst == src {
                dst = topo.server(rng.random_range(0..num_servers));
            }
            background.push(BackgroundFlow {
                src,
                dst,
                size: sample_pareto(&mut rng, cfg),
                start: cfg.arrivals.next_start(&mut rng, &mut clock),
            });
        }
        Self {
            requests,
            background,
        }
    }
}

/// Locality-aware greedy placement (Section 4.1): workers are assigned to a
/// consecutive run of servers starting at a random offset, which keeps a
/// request as rack-local as its fan-in allows; the master sits adjacent.
#[allow(clippy::too_many_arguments)]
fn place_request(
    topo: &Topology,
    rng: &mut StdRng,
    id: u32,
    workers: u32,
    num_servers: u32,
    cfg: &WorkloadConfig,
    arrival: f64,
) -> Request {
    let start = rng.random_range(0..num_servers);
    let master = topo.server(start);
    let mut worker_nodes = Vec::with_capacity(workers as usize);
    for i in 1..=workers {
        worker_nodes.push(topo.server((start + i) % num_servers));
    }
    let sizes: Vec<f64> = (0..workers).map(|_| sample_pareto(rng, cfg)).collect();
    let starts: Vec<f64> = (0..workers)
        .map(|_| {
            arrival
                + if cfg.straggler_frac > 0.0 && rng.random::<f64>() < cfg.straggler_frac {
                    cfg.straggler_delay * rng.random_range(0.5..1.5)
                } else {
                    0.0
                }
        })
        .collect();
    Request {
        id,
        master,
        workers: worker_nodes,
        sizes,
        starts,
    }
}

/// Bounded Pareto sample with the configured mean and shape.
fn sample_pareto(rng: &mut StdRng, cfg: &WorkloadConfig) -> f64 {
    // mean = shape * x_m / (shape - 1)  =>  x_m = mean * (shape - 1) / shape
    let xm = cfg.pareto_mean * (cfg.pareto_shape - 1.0) / cfg.pareto_shape;
    let u: f64 = rng.random::<f64>().max(1e-12);
    (xm / u.powf(1.0 / cfg.pareto_shape)).min(cfg.size_cap)
}

/// Discrete bounded power-law sample via inverse-CDF on the continuous
/// distribution, rounded.
fn sample_power_law(rng: &mut StdRng, min: u32, max: u32, exp: f64) -> u32 {
    let (a, b) = (min as f64, max as f64 + 1.0);
    let g = 1.0 - exp;
    let u: f64 = rng.random();
    let x = (a.powf(g) + u * (b.powf(g) - a.powf(g))).powf(1.0 / g);
    (x.floor() as u32).clamp(min, max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::TopologyConfig;

    fn topo() -> Topology {
        Topology::build(&TopologyConfig::quick())
    }

    fn cfg() -> WorkloadConfig {
        WorkloadConfig {
            num_flows: 500,
            ..WorkloadConfig::default()
        }
    }

    #[test]
    fn flow_budget_is_respected() {
        let w = Workload::generate(&topo(), &cfg());
        let total = w.num_worker_flows() + w.background.len();
        assert_eq!(total, 500);
        let frac = w.num_worker_flows() as f64 / total as f64;
        assert!((frac - 0.4).abs() < 0.05, "aggregatable fraction {frac}");
    }

    #[test]
    fn edge_load_scales_flow_count_with_servers() {
        let quick = TopologyConfig::quick(); // 32 servers
        let w1 = WorkloadConfig::for_edge_load(&quick, 1.0);
        assert_eq!(w1.num_flows, 250); // 32 x 2000/256
        let w2 = WorkloadConfig::for_edge_load(&quick, 2.0);
        assert_eq!(w2.num_flows, 500);
        let big = TopologyConfig::scale10x();
        let wb = WorkloadConfig::for_edge_load(&big, 1.0);
        assert_eq!(wb.num_flows, 80_000); // 10240 x 2000/256
    }

    #[test]
    fn deterministic_under_seed() {
        let a = Workload::generate(&topo(), &cfg());
        let b = Workload::generate(&topo(), &cfg());
        assert_eq!(a.requests.len(), b.requests.len());
        for (ra, rb) in a.requests.iter().zip(&b.requests) {
            assert_eq!(ra.workers, rb.workers);
            assert_eq!(ra.sizes, rb.sizes);
        }
    }

    #[test]
    fn different_seed_differs() {
        let a = Workload::generate(&topo(), &cfg());
        let mut c2 = cfg();
        c2.seed = 1;
        let b = Workload::generate(&topo(), &c2);
        assert_ne!(
            a.requests
                .first()
                .map(|r| r.workers.clone())
                .unwrap_or_default(),
            b.requests
                .first()
                .map(|r| r.workers.clone())
                .unwrap_or_default()
        );
    }

    #[test]
    fn pareto_mean_is_roughly_right() {
        let mut rng = StdRng::seed_from_u64(7);
        let c = cfg();
        let n = 200_000;
        let mean: f64 = (0..n).map(|_| sample_pareto(&mut rng, &c)).sum::<f64>() / n as f64;
        // Heavy-tailed with a cap: the empirical mean lands near but below
        // the nominal mean for shape 1.05.
        assert!(mean > 20e3 && mean < 400e3, "mean {mean}");
    }

    #[test]
    fn power_law_worker_counts_within_bounds_and_skewed() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut small = 0;
        let n = 10_000;
        for _ in 0..n {
            let w = sample_power_law(&mut rng, 2, 128, 1.8);
            assert!((2..=128).contains(&w));
            if w < 20 {
                small += 1;
            }
        }
        assert!(
            small as f64 / n as f64 > 0.7,
            "power law should be dominated by small fan-ins"
        );
    }

    #[test]
    fn stragglers_delay_some_workers() {
        let mut c = cfg();
        c.straggler_frac = 0.3;
        let w = Workload::generate(&topo(), &c);
        let delayed: usize = w
            .requests
            .iter()
            .flat_map(|r| r.starts.iter())
            .filter(|s| **s > 0.0)
            .count();
        let total: usize = w.num_worker_flows();
        let frac = delayed as f64 / total as f64;
        assert!((frac - 0.3).abs() < 0.1, "straggler fraction {frac}");
    }

    #[test]
    fn poisson_arrivals_spread_over_time() {
        let mut c = cfg();
        c.arrivals = ArrivalProcess::Poisson { rate: 1_000.0 };
        let w = Workload::generate(&topo(), &c);
        let starts: Vec<f64> = w
            .requests
            .iter()
            .flat_map(|r| r.starts.iter().copied())
            .chain(w.background.iter().map(|b| b.start))
            .collect();
        let max = starts.iter().cloned().fold(0.0, f64::max);
        assert!(max > 0.0, "arrivals must spread");
        // Mean inter-arrival ~ 1 ms over a few hundred arrivals.
        assert!(max < 10.0, "window unexpectedly long: {max}");
    }

    #[test]
    fn uniform_arrivals_stay_in_window() {
        let mut c = cfg();
        c.arrivals = ArrivalProcess::Uniform { window: 0.5 };
        let w = Workload::generate(&topo(), &c);
        for b in &w.background {
            assert!(b.start >= 0.0 && b.start <= 0.5);
        }
    }

    #[test]
    fn workers_never_collide_with_master() {
        let w = Workload::generate(&topo(), &cfg());
        for r in &w.requests {
            assert!(!r.workers.contains(&r.master));
            assert_eq!(r.workers.len(), r.sizes.len());
            assert_eq!(r.workers.len(), r.starts.len());
        }
    }
}
