//! Agg-box deployment: which switches have boxes, and how many.
//!
//! The paper evaluates a full deployment (every switch), tier-restricted
//! partial deployments (Fig. 12), a fixed box budget spread over tiers
//! (Fig. 12, right half), and scale-out with several boxes per switch
//! (Fig. 13, Fig. 20).

use crate::flow::BoxId;
use crate::topology::{NodeId, Tier, Topology};
use std::collections::HashMap;

/// How a fixed budget of boxes is distributed over the fabric.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BudgetSpread {
    /// All boxes at core switches.
    CoreOnly,
    /// Uniformly over aggregation switches.
    AggrUniform,
    /// Uniformly over aggregation and core switches.
    CoreAndAggr,
}

/// Deployment policy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Deployment {
    /// `per_switch` boxes on every switch of every tier.
    All {
        /// Boxes attached to each switch.
        per_switch: u32,
    },
    /// Boxes only at the listed tiers.
    Tiers {
        /// Tiers that get boxes.
        tiers: Vec<Tier>,
        /// Boxes attached to each switch of those tiers.
        per_switch: u32,
    },
    /// Exactly `count` boxes spread per `spread`.
    Budget {
        /// Total box budget.
        count: u32,
        /// How the budget is distributed.
        spread: BudgetSpread,
    },
    /// No boxes anywhere (degenerates NetAgg to direct worker->master).
    None,
}

impl Deployment {
    /// One box on every switch (the paper's "NetAgg" configuration).
    pub fn all() -> Self {
        Deployment::All { per_switch: 1 }
    }

    /// The paper's "Incremental-NetAgg": boxes only at the middle
    /// (aggregation) tier.
    pub fn incremental() -> Self {
        Deployment::Tiers {
            tiers: vec![Tier::Aggregation],
            per_switch: 1,
        }
    }
}

/// Materialised deployment: the set of boxes and a per-switch index.
#[derive(Debug, Clone)]
pub struct BoxPlacement {
    /// Switch each box attaches to, indexed by [`BoxId`].
    pub boxes: Vec<NodeId>,
    by_switch: HashMap<NodeId, Vec<BoxId>>,
}

impl BoxPlacement {
    /// Materialise a deployment policy on a topology.
    pub fn new(topo: &Topology, dep: &Deployment) -> Self {
        let mut boxes = Vec::new();
        let mut by_switch: HashMap<NodeId, Vec<BoxId>> = HashMap::new();
        let mut place = |sw: NodeId, boxes: &mut Vec<NodeId>| {
            let id = BoxId(boxes.len() as u32);
            boxes.push(sw);
            by_switch.entry(sw).or_default().push(id);
        };
        match dep {
            Deployment::None => {}
            Deployment::All { per_switch } => {
                for sw in topo.all_switches() {
                    for _ in 0..*per_switch {
                        place(sw, &mut boxes);
                    }
                }
            }
            Deployment::Tiers { tiers, per_switch } => {
                for tier in tiers {
                    for sw in topo.switches(*tier) {
                        for _ in 0..*per_switch {
                            place(sw, &mut boxes);
                        }
                    }
                }
            }
            Deployment::Budget { count, spread } => {
                let switches: Vec<NodeId> = match spread {
                    BudgetSpread::CoreOnly => topo.switches(Tier::Core),
                    BudgetSpread::AggrUniform => topo.switches(Tier::Aggregation),
                    BudgetSpread::CoreAndAggr => {
                        let mut v = topo.switches(Tier::Aggregation);
                        v.extend(topo.switches(Tier::Core));
                        v
                    }
                };
                // Round-robin the budget over the candidate switches so the
                // spread is uniform; a switch may get several boxes if the
                // budget exceeds the number of switches.
                for i in 0..*count {
                    let sw = switches[i as usize % switches.len()];
                    place(sw, &mut boxes);
                }
            }
        }
        Self { boxes, by_switch }
    }

    /// Total boxes deployed.
    pub fn num_boxes(&self) -> usize {
        self.boxes.len()
    }

    /// Boxes at a given switch (empty slice if none).
    pub fn boxes_at(&self, sw: NodeId) -> &[BoxId] {
        self.by_switch.get(&sw).map(Vec::as_slice).unwrap_or(&[])
    }

    /// The box at `sw` serving a request with the given hash, if any
    /// (scale-out load balancing: requests are hashed over the boxes
    /// attached to one switch, Section 3.1).
    pub fn box_for(&self, sw: NodeId, hash: u64) -> Option<BoxId> {
        let slots = self.boxes_at(sw);
        if slots.is_empty() {
            None
        } else {
            Some(slots[(hash % slots.len() as u64) as usize])
        }
    }

    /// The switch box `b` attaches to.
    pub fn switch_of(&self, b: BoxId) -> NodeId {
        self.boxes[b.0 as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::TopologyConfig;

    fn topo() -> Topology {
        Topology::build(&TopologyConfig::quick())
    }

    #[test]
    fn all_deployment_covers_every_switch() {
        let t = topo();
        let p = BoxPlacement::new(&t, &Deployment::all());
        assert_eq!(p.num_boxes() as u32, t.config.num_switches());
        for sw in t.all_switches() {
            assert_eq!(p.boxes_at(sw).len(), 1);
        }
    }

    #[test]
    fn scale_out_places_multiple_boxes() {
        let t = topo();
        let p = BoxPlacement::new(&t, &Deployment::All { per_switch: 3 });
        for sw in t.all_switches() {
            assert_eq!(p.boxes_at(sw).len(), 3);
        }
        // Hashing spreads requests over slots.
        let sw = t.all_switches()[0];
        let mut seen = std::collections::HashSet::new();
        for h in 0..32u64 {
            seen.insert(p.box_for(sw, h).unwrap());
        }
        assert_eq!(seen.len(), 3);
    }

    #[test]
    fn tier_deployment_restricts_placement() {
        let t = topo();
        let p = BoxPlacement::new(
            &t,
            &Deployment::Tiers {
                tiers: vec![Tier::Core],
                per_switch: 1,
            },
        );
        assert_eq!(p.num_boxes() as u32, t.config.cores);
        for sw in t.switches(Tier::Tor) {
            assert!(p.boxes_at(sw).is_empty());
        }
    }

    #[test]
    fn budget_is_exact_and_uniform() {
        let t = topo();
        let p = BoxPlacement::new(
            &t,
            &Deployment::Budget {
                count: 7,
                spread: BudgetSpread::CoreAndAggr,
            },
        );
        assert_eq!(p.num_boxes(), 7);
        for sw in t.switches(Tier::Tor) {
            assert!(p.boxes_at(sw).is_empty());
        }
    }

    #[test]
    fn none_deployment_is_empty() {
        let t = topo();
        let p = BoxPlacement::new(&t, &Deployment::None);
        assert_eq!(p.num_boxes(), 0);
        assert!(p.box_for(t.all_switches()[0], 5).is_none());
    }
}
