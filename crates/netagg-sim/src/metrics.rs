//! Metric helpers: percentiles, CDFs, link-traffic summaries.

use crate::engine::SimResult;
use crate::flow::SegmentKind;

/// Which flows a metric covers.
///
/// FCT percentiles must be computed over a population that is *consistent
/// across strategies*: the workload's own flows (background traffic plus
/// each worker's partial-result transfer). Derived segments (aggregation
/// outputs) differ in number and shape per strategy — a deeper tree emits
/// more of them — so including them would skew percentile comparisons by
/// population, not by performance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlowClass {
    /// The workload's flows: background + worker partials (the paper's
    /// "all flows" population).
    All,
    /// Worker partial-result transfers only.
    Aggregation,
    /// Non-aggregatable background traffic (Fig. 7).
    Background,
    /// Strategy-internal derived segments (aggregation outputs).
    Derived,
    /// Every recorded segment, regardless of comparability.
    Everything,
}

impl FlowClass {
    /// Whether a segment of `kind` belongs to this class.
    pub fn matches(&self, kind: SegmentKind) -> bool {
        match self {
            FlowClass::All => kind != SegmentKind::AggregatedOutput,
            FlowClass::Aggregation => kind == SegmentKind::WorkerPartial,
            FlowClass::Background => kind == SegmentKind::Background,
            FlowClass::Derived => kind == SegmentKind::AggregatedOutput,
            FlowClass::Everything => true,
        }
    }
}

/// Linear-interpolated percentile of an ascending-sorted slice.
/// `p` in `[0, 1]`. Returns 0 for an empty slice.
pub fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let p = p.clamp(0.0, 1.0);
    let pos = p * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let w = pos - lo as f64;
        sorted[lo] * (1.0 - w) + sorted[hi] * w
    }
}

/// Empirical CDF of a sample, down-sampled to at most `points` points:
/// returns `(value, cumulative fraction)` pairs.
pub fn cdf(values: &[f64], points: usize) -> Vec<(f64, f64)> {
    let mut sorted: Vec<f64> = values.to_vec();
    sorted.sort_by(f64::total_cmp);
    if sorted.is_empty() {
        return Vec::new();
    }
    let n = sorted.len();
    let step = (n.max(points) / points.max(1)).max(1);
    let mut out = Vec::new();
    let mut i = 0;
    while i < n {
        out.push((sorted[i], (i + 1) as f64 / n as f64));
        i += step;
    }
    if out.last().map(|&(_, f)| f < 1.0).unwrap_or(false) {
        out.push((sorted[n - 1], 1.0));
    }
    out
}

/// Summary of one simulation run, as reported by the figure harness.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct Metrics {
    /// Median FCT over the workload's flows, seconds.
    pub p50_all: f64,
    /// 99th-percentile FCT over the workload's flows, seconds.
    pub p99_all: f64,
    /// 99th-percentile FCT of background flows, seconds.
    pub p99_background: f64,
    /// 99th-percentile FCT of worker partial-result flows, seconds.
    pub p99_aggregation: f64,
    /// Time at which the last flow completed, seconds.
    pub makespan: f64,
}

impl Metrics {
    /// Summarise one simulation run.
    pub fn of(result: &SimResult) -> Self {
        Self {
            p50_all: result.fct_median(FlowClass::All),
            p99_all: result.fct_p99(FlowClass::All),
            p99_background: result.fct_p99(FlowClass::Background),
            p99_aggregation: result.fct_p99(FlowClass::Aggregation),
            makespan: result.makespan,
        }
    }
}

/// Per-link carried bytes of links that carried anything, sorted ascending
/// (the paper's Fig. 9 CDF of link traffic).
pub fn link_traffic_sorted(result: &SimResult) -> Vec<f64> {
    let mut v: Vec<f64> = result
        .link_bytes
        .iter()
        .copied()
        .filter(|&b| b > 0.0)
        .collect();
    v.sort_by(f64::total_cmp);
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_basics() {
        let v = vec![1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&v, 0.0), 1.0);
        assert_eq!(percentile(&v, 1.0), 4.0);
        assert!((percentile(&v, 0.5) - 2.5).abs() < 1e-12);
        assert_eq!(percentile(&[], 0.5), 0.0);
    }

    #[test]
    fn percentile_single_element() {
        assert_eq!(percentile(&[7.0], 0.99), 7.0);
    }

    #[test]
    fn cdf_is_monotone_and_complete() {
        let v: Vec<f64> = (0..1000).map(|i| (i as f64).sin().abs()).collect();
        let c = cdf(&v, 50);
        assert!(c.len() <= 52);
        for w in c.windows(2) {
            assert!(w[0].0 <= w[1].0);
            assert!(w[0].1 <= w[1].1);
        }
        assert!((c.last().unwrap().1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn flow_class_matching() {
        assert!(FlowClass::All.matches(SegmentKind::Background));
        assert!(FlowClass::All.matches(SegmentKind::WorkerPartial));
        assert!(!FlowClass::All.matches(SegmentKind::AggregatedOutput));
        assert!(!FlowClass::Aggregation.matches(SegmentKind::Background));
        assert!(FlowClass::Aggregation.matches(SegmentKind::WorkerPartial));
        assert!(FlowClass::Background.matches(SegmentKind::Background));
        assert!(!FlowClass::Background.matches(SegmentKind::AggregatedOutput));
        assert!(FlowClass::Derived.matches(SegmentKind::AggregatedOutput));
        assert!(FlowClass::Everything.matches(SegmentKind::AggregatedOutput));
    }
}
