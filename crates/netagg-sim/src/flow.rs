//! Flow (segment) representation consumed by the fluid engine.
//!
//! A *flow* is a fixed number of bytes pushed over a fixed set of
//! resources. Resources are directed topology links plus, per agg box, an
//! ingress link, an egress link and a processor (the box's maximum
//! aggregation rate, Section 2.4 of the paper).
//!
//! Aggregation trees couple flows: an aggregation point's output flow lists
//! the flows feeding it as `children`; the engine *completion-gates* the
//! parent on its children (it starts with the earliest child and cannot
//! finish before all children have delivered their last byte), which
//! models pipelined streaming aggregation end-to-end.

use crate::topology::LinkId;

/// Byte slack below which a flow's residual is considered delivered.
///
/// This is the *single* completion boundary shared by every engine
/// (reference and incremental): admission of zero-byte flows, the
/// completion check after advancing time, and the settle step of the
/// incremental solver all call [`delivered`] so a residual landing exactly
/// on the boundary is classified identically everywhere — it can neither
/// be completed twice nor skipped (see `epsilon_boundary_*` regression
/// tests in `engine.rs`).
pub const EPS_BYTES: f64 = 1e-3;

/// Whether a residual byte count counts as fully delivered.
///
/// The boundary is inclusive: a residual of exactly [`EPS_BYTES`] is
/// delivered. NaN residuals (which cannot arise once capacities are
/// validated, see [`crate::engine::EngineError`]) compare `false` and are
/// caught by the engines' progress asserts instead of silently completing.
#[inline]
pub fn delivered(remaining: f64) -> bool {
    remaining <= EPS_BYTES
}

/// Index of a flow within one simulation run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FlowId(pub u32);

/// Index of an agg box in the active [`crate::deployment::BoxPlacement`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BoxId(pub u32);

/// A capacity-constrained resource a flow consumes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Resource {
    /// A directed fabric link.
    Link(LinkId),
    /// The switch-to-box attach link, ingress direction.
    BoxIn(BoxId),
    /// The box-to-switch attach link, egress direction.
    BoxOut(BoxId),
    /// The box's aggregation processor (paper: 9.2 Gbps per box); consumed
    /// by flows *entering* the box.
    BoxProc(BoxId),
}

/// What role a segment plays inside (or outside) an aggregation tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum SegmentKind {
    /// Point-to-point traffic that cannot be aggregated (e.g. HDFS reads).
    Background,
    /// Worker partial result towards its first aggregation point (or the
    /// master directly when no aggregation applies).
    WorkerPartial,
    /// Output of an aggregation point towards the next aggregation point or
    /// the master.
    AggregatedOutput,
}

/// A single simulated flow.
#[derive(Debug, Clone)]
pub struct FlowSpec {
    /// Bytes to transfer.
    pub size: f64,
    /// Resources traversed, in path order.
    pub resources: Vec<Resource>,
    /// Flows whose output this flow forwards (indices into the flow vector).
    pub children: Vec<u32>,
    /// Effective data-reduction factor of the aggregation point producing
    /// this flow (`size / total input received`); 1.0 for leaves and
    /// pass-through nodes.
    pub alpha: f64,
    /// Bytes available locally at the producing node at `start` (a worker's
    /// own partial result), i.e. input that arrives without a network flow.
    pub local_input: f64,
    /// Simulation time at which the flow starts (stragglers start late).
    pub start: f64,
    /// Role of this segment in (or outside) an aggregation tree.
    pub kind: SegmentKind,
    /// Identifier of the request this flow belongs to; `None` for background.
    pub request: Option<u32>,
}

impl FlowSpec {
    /// A background (non-aggregatable) point-to-point flow.
    pub fn background(size: f64, links: impl IntoIterator<Item = LinkId>, start: f64) -> Self {
        Self {
            size,
            resources: links.into_iter().map(Resource::Link).collect(),
            children: Vec::new(),
            alpha: 1.0,
            local_input: size,
            start,
            kind: SegmentKind::Background,
            request: None,
        }
    }

    /// A leaf flow carrying locally available data (a worker's partial
    /// result): never production-capped.
    pub fn leaf(
        size: f64,
        resources: Vec<Resource>,
        start: f64,
        kind: SegmentKind,
        request: u32,
    ) -> Self {
        Self {
            size,
            resources,
            children: Vec::new(),
            alpha: 1.0,
            local_input: size,
            start,
            kind,
            request: Some(request),
        }
    }

    /// Whether this flow belongs to an aggregation request.
    pub fn is_aggregation_traffic(&self) -> bool {
        !matches!(self.kind, SegmentKind::Background)
    }

    /// Total input bytes feeding this flow's producing node (for invariant
    /// checks: `size == alpha x total_input`).
    pub fn total_input(&self, all: &[FlowSpec]) -> f64 {
        self.local_input
            + self
                .children
                .iter()
                .map(|&c| all[c as usize].size)
                .sum::<f64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn background_flows_have_no_tree_structure() {
        let f = FlowSpec::background(100.0, vec![LinkId(0)], 0.0);
        assert!(f.children.is_empty());
        assert!(!f.is_aggregation_traffic());
        assert_eq!(f.alpha, 1.0);
        assert_eq!(f.local_input, f.size);
    }

    #[test]
    fn leaf_flow_size_consistency() {
        let f = FlowSpec::leaf(
            512.0,
            vec![Resource::Link(LinkId(3))],
            0.0,
            SegmentKind::WorkerPartial,
            9,
        );
        let all = vec![f.clone()];
        assert_eq!(f.total_input(&all), 512.0);
        assert!((f.size - f.alpha * f.total_input(&all)).abs() < 1e-9);
    }
}
