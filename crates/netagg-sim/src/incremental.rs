//! Incremental max-min fluid engine: event-driven, certificate-verified
//! local repair.
//!
//! [`crate::engine::Engine`] (the reference solver) recomputes the full
//! progressive-filling allocation over *every* active flow at *every*
//! event — quadratic work that tops out near the paper's 1,024-server
//! scale. This engine reaches the 10,240-server fabric by doing three
//! things differently:
//!
//! 1. **Versioned calendar events** ([`crate::events`]): each active flow
//!    has exactly one scheduled *projected completion*. When a re-solve
//!    changes the flow's rate, its version is bumped and a new event is
//!    pushed; the stale one is discarded in O(1) when the queue walks over
//!    it (minim's `version` trick, SNIPPETS.md §2).
//! 2. **Lazy byte settlement**: per flow the engine stores
//!    `(remaining, rate, settled_at)` and only folds elapsed time into
//!    `remaining` when the flow enters a re-solve scope or completes.
//!    Untouched flows cost nothing per event.
//! 3. **Bottleneck-scoped re-solves**: on each event only the flows that
//!    share a resource with the arriving/departing flows (the *scope*) are
//!    re-solved, with every out-of-scope flow's bandwidth frozen. The
//!    result is then checked against the max-min optimality certificate
//!    below; only when a certificate fails does the scope expand.
//!
//! # Why certificate verification makes the local repair exact
//!
//! Max-min fairness has a classic characterisation (Bertsekas & Gallager,
//! *Data Networks*, §6.5.2): a feasible allocation is **the** (unique)
//! max-min fair allocation iff every flow `f` has a *bottleneck* resource
//! `r` on its path with (i) `r` saturated and (ii) `rate(f) >= rate(g)`
//! for every flow `g` crossing `r`.
//!
//! A local re-solve over a scope `C` (a seeded waterfill with out-of-scope
//! rates frozen) always yields a
//! *feasible* allocation, but it can be globally unfair: a scope flow may
//! be pinned by a frozen flow that itself ought to yield (removals can
//! *lower* third-party rates through a cascade, so no monotonicity
//! argument applies). The engine therefore verifies certificates after
//! each local solve:
//!
//! * every scope flow is checked directly;
//! * a frozen flow's certificate can only break at a resource whose
//!   crosser-maximum rose or whose saturation was lost, so only frozen
//!   crossers of such *flagged* resources (plus the seed resources the
//!   event itself changed) are re-checked — every other flow keeps its old
//!   certificate verbatim because nothing on its path changed;
//! * any flow that fails joins the scope together with the crossers of its
//!   saturated resources (the flows pinning it), and the scope is
//!   re-solved.
//!
//! If certificates keep failing after [`MAX_EXPANSIONS`] rounds the engine
//! falls back to one global waterfill over all active flows, which is
//! exact by construction. In practice (see `BENCH_sim.json`) the first
//! scope — the bottleneck cohort of the event — verifies almost always,
//! so per-event work is proportional to the flows whose rates actually
//! change, not to the number of active flows.
//!
//! # Invariants
//!
//! | invariant | maintained by |
//! |---|---|
//! | every `Active` flow has exactly one valid scheduled event | version bump + push on every rate change / deactivation |
//! | `crossers[r]` lists exactly the `Active` flows using `r` | admission push / swap-remove on deactivation (slot fix-up) |
//! | re-solve seeds are exact sums, not drifting accumulators | frozen bandwidth is re-scanned from `crossers[r]` per re-solve |
//! | completion uses [`crate::flow::delivered`] | single shared epsilon boundary (see `flow.rs`) |
//! | every committed allocation satisfies the max-min certificate | per-flow verification + scope expansion + global fallback |
//!
//! Results match the reference engine within floating-point accumulation
//! order (parity is pinned to 1e-6 relative by
//! `tests/incremental_parity.rs`), and identical inputs give byte-identical
//! [`SimResult`]s: the engine iterates only `Vec`s, never hash maps, in
//! event order.

use crate::deployment::BoxPlacement;
use crate::engine::{
    capacity_table, resource_index, validate_caps, Allocator, EngineError, FlowRecord, SimResult,
};
use crate::events::{CalendarQueue, Event};
use crate::flow::{self, FlowSpec, Resource};
use crate::topology::Topology;
use crate::ExperimentConfig;

/// Scope-expansion rounds before giving up and re-solving globally.
pub const MAX_EXPANSIONS: u32 = 4;

/// Relative tolerance for the certificate checks (saturation and
/// crosser-maximum comparisons). Frozen rates are carried bitwise and
/// seeds are exact re-scans, so only waterfill accumulation noise has to
/// be absorbed; 1e-9 is orders of magnitude above that and orders of
/// magnitude below the 1e-6 parity tolerance.
const CERT_TOL: f64 = 1e-9;

/// Counters describing how much work one incremental run did; the basis of
/// the `events/sec` figure tracked in `BENCH_sim.json`.
#[derive(Debug, Clone, Copy, Default, serde::Serialize)]
pub struct EngineStats {
    /// Flow starts admitted.
    pub starts: u64,
    /// Completion events popped from the calendar queue (incl. spurious).
    pub completions: u64,
    /// Stale events discarded in O(1) by the version check.
    pub stale_discards: u64,
    /// Wakeups whose flow had residual bytes left (FP drift); rescheduled.
    pub spurious_wakeups: u64,
    /// Scoped re-solves performed (one per event that touched any flow).
    pub resolves: u64,
    /// Total flows re-rated across all re-solve rounds.
    pub resolved_flows: u64,
    /// Largest single re-solve scope.
    pub max_scope: u64,
    /// Certificate failures that grew a scope and re-solved it.
    pub expansions: u64,
    /// Re-solves that gave up on local repair and went global.
    pub fallbacks: u64,
}

impl EngineStats {
    /// Total simulation events processed (starts + completions).
    pub fn events(&self) -> u64 {
        self.starts + self.completions
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    Pending,
    Active,
    /// All bytes pushed, waiting for children to complete.
    Drained,
    Done,
}

/// Per-flow state, lazily settled: `remaining` is exact only at
/// `settled_at`; the live residual is `remaining - rate * (t - settled_at)`.
struct Flows {
    /// Flow -> resource ids (dense, see [`resource_index`]).
    res: Vec<Vec<u32>>,
    /// Parallel to `res`: this flow's slot in `crossers[r]`.
    slot: Vec<Vec<u32>>,
    remaining: Vec<f64>,
    settled_at: Vec<f64>,
    rate: Vec<f64>,
    /// Rate at scope entry (valid while `in_scope` holds the current id).
    old_rate: Vec<f64>,
    version: Vec<u32>,
    /// Scope-membership stamp (generation counter, never cleared).
    in_scope: Vec<u64>,
    /// Dedup stamp for frozen-flow certificate checks.
    checked: Vec<u64>,
}

impl Flows {
    fn settle(&mut self, f: usize, t: f64) {
        let dt = t - self.settled_at[f];
        if dt > 0.0 && self.rate[f] > 0.0 {
            self.remaining[f] = (self.remaining[f] - self.rate[f] * dt).max(0.0);
        }
        self.settled_at[f] = t;
    }
}

/// Per-resource state: capacity, the live crosser list, and memoised
/// per-re-solve scan results (stamp-guarded, never cleared).
struct Resources {
    caps: Vec<f64>,
    /// Active flows crossing each resource as `(flow, j)` where `j` is the
    /// resource's position in `res[flow]` (for O(1) swap-remove fix-up).
    crossers: Vec<Vec<(u32, u32)>>,
    stamp: Vec<u64>,
    flag_stamp: Vec<u64>,
    gen: u64,
    /// Frozen (out-of-scope) bandwidth per resource, exact re-scan.
    seed: Vec<f64>,
    sum_old: Vec<f64>,
    sum_new: Vec<f64>,
    max_old: Vec<f64>,
    max_new: Vec<f64>,
}

impl Resources {
    fn new(caps: Vec<f64>) -> Self {
        let nr = caps.len();
        Self {
            caps,
            crossers: vec![Vec::new(); nr],
            stamp: vec![0; nr],
            flag_stamp: vec![0; nr],
            gen: 0,
            seed: vec![0.0; nr],
            sum_old: vec![0.0; nr],
            sum_new: vec![0.0; nr],
            max_old: vec![0.0; nr],
            max_new: vec![0.0; nr],
        }
    }

    /// Memoised exact scan of `r`'s crossers: old/new rate sums and maxima
    /// ("old" = rate at scope entry for scope members, current otherwise).
    fn ensure(&mut self, r: usize, fl: &Flows, scope_id: u64) {
        if self.stamp[r] == self.gen {
            return;
        }
        self.stamp[r] = self.gen;
        let (mut so, mut sn, mut mo, mut mn) = (0.0f64, 0.0f64, 0.0f64, 0.0f64);
        for &(g, _) in &self.crossers[r] {
            let g = g as usize;
            let new = fl.rate[g];
            let old = if fl.in_scope[g] == scope_id {
                fl.old_rate[g]
            } else {
                new
            };
            so += old;
            sn += new;
            if old > mo {
                mo = old;
            }
            if new > mn {
                mn = new;
            }
        }
        self.sum_old[r] = so;
        self.sum_new[r] = sn;
        self.max_old[r] = mo;
        self.max_new[r] = mn;
    }

    fn saturated_old(&self, r: usize) -> bool {
        self.sum_old[r] >= self.caps[r] * (1.0 - CERT_TOL)
    }

    fn saturated_new(&self, r: usize) -> bool {
        self.sum_new[r] >= self.caps[r] * (1.0 - CERT_TOL)
    }
}

/// Does `f` hold a max-min bottleneck certificate under the current
/// (tentative) rates: some saturated resource on its path where it is the
/// fastest crosser?
fn certificate(f: u32, fl: &Flows, rt: &mut Resources, scope_id: u64) -> bool {
    let fu = f as usize;
    let xf = fl.rate[fu];
    fl.res[fu].iter().any(|&r| {
        let r = r as usize;
        rt.ensure(r, fl, scope_id);
        rt.saturated_new(r) && xf >= rt.max_new[r] * (1.0 - CERT_TOL)
    })
}

fn add_to_scope(g: u32, t: f64, fl: &mut Flows, scope: &mut Vec<u32>, scope_id: u64) {
    let gu = g as usize;
    if fl.in_scope[gu] != scope_id {
        fl.in_scope[gu] = scope_id;
        fl.old_rate[gu] = fl.rate[gu];
        fl.settle(gu, t);
        scope.push(g);
    }
}

/// Re-solve the allocation around an event at time `t`.
///
/// `seeds` are the resources the event itself changed (the departed
/// flow's path, or the union of newly admitted paths); the initial scope
/// is their full crosser set. Solve locally (out-of-scope rates frozen),
/// verify certificates, expand on failure, fall back to a global solve
/// after [`MAX_EXPANSIONS`] rounds, then commit: bump versions and push
/// fresh events for every flow whose rate changed bitwise.
#[allow(clippy::too_many_arguments)]
fn resolve(
    t: f64,
    seeds: &[u32],
    fl: &mut Flows,
    rt: &mut Resources,
    scope: &mut Vec<u32>,
    touched: &mut Vec<u32>,
    flagged: &mut Vec<u32>,
    failures: &mut Vec<u32>,
    active_list: &[u32],
    alloc: &mut Allocator,
    queue: &mut Option<CalendarQueue>,
    scope_id: &mut u64,
    stats: &mut EngineStats,
) {
    *scope_id += 1;
    let sid = *scope_id;
    scope.clear();
    for &r in seeds {
        for i in 0..rt.crossers[r as usize].len() {
            let (g, _) = rt.crossers[r as usize][i];
            add_to_scope(g, t, fl, scope, sid);
        }
    }
    if scope.is_empty() {
        return;
    }
    stats.resolves += 1;

    let mut round = 0u32;
    loop {
        // Deterministic input order: the waterfill's FP accumulation (and
        // thus the byte-identical-result fence) must not depend on crosser
        // list history.
        scope.sort_unstable();
        stats.resolved_flows += scope.len() as u64;
        stats.max_scope = stats.max_scope.max(scope.len() as u64);

        // Seed pass: exact frozen-bandwidth re-scan per touched resource
        // (out-of-scope crossers keep their committed rates, so seeds never
        // accumulate drift across re-solves).
        rt.gen += 1;
        touched.clear();
        for &f in scope.iter() {
            for &r in &fl.res[f as usize] {
                let r = r as usize;
                if rt.stamp[r] != rt.gen {
                    rt.stamp[r] = rt.gen;
                    touched.push(r as u32);
                    let mut frozen = 0.0;
                    for &(g, _) in &rt.crossers[r] {
                        if fl.in_scope[g as usize] != sid {
                            frozen += fl.rate[g as usize];
                        }
                    }
                    rt.seed[r] = frozen;
                }
            }
        }
        {
            let seed = &rt.seed;
            let base = |r: usize| seed[r].max(0.0);
            alloc.waterfill_seeded(scope, &fl.res, &rt.caps, &mut fl.rate, Some(&base));
        }

        if scope.len() == active_list.len() {
            break; // Global solve: exact by construction, nothing to verify.
        }
        if round > MAX_EXPANSIONS {
            stats.fallbacks += 1;
            for &g in active_list {
                add_to_scope(g, t, fl, scope, sid);
            }
            continue; // Next round is the global solve and breaks above.
        }

        // Verify pass. Flagged resources: the seeds themselves, plus any
        // touched resource whose crosser-maximum rose or whose saturation
        // was lost — the only two changes that can break a frozen flow's
        // existing certificate.
        rt.gen += 1;
        flagged.clear();
        for &r in seeds {
            if rt.flag_stamp[r as usize] != rt.gen {
                rt.flag_stamp[r as usize] = rt.gen;
                flagged.push(r);
            }
        }
        for &r in touched.iter() {
            let r = r as usize;
            if rt.flag_stamp[r] == rt.gen {
                continue;
            }
            rt.ensure(r, fl, sid);
            if rt.max_new[r] > rt.max_old[r] || (rt.saturated_old(r) && !rt.saturated_new(r)) {
                rt.flag_stamp[r] = rt.gen;
                flagged.push(r as u32);
            }
        }
        failures.clear();
        for &f in scope.iter() {
            if !certificate(f, fl, rt, sid) {
                failures.push(f);
            }
        }
        for &r in flagged.iter() {
            let r = r as usize;
            for j in 0..rt.crossers[r].len() {
                let (g, _) = rt.crossers[r][j];
                let gu = g as usize;
                if fl.in_scope[gu] == sid || fl.checked[gu] == rt.gen {
                    continue;
                }
                fl.checked[gu] = rt.gen;
                if !certificate(g, fl, rt, sid) {
                    failures.push(g);
                }
            }
        }
        if failures.is_empty() {
            break;
        }

        // Expansion: each failing flow joins the scope along with the
        // blockers pinning it — every crosser of its saturated resources.
        stats.expansions += 1;
        let before = scope.len();
        for &f in failures.iter() {
            add_to_scope(f, t, fl, scope, sid);
            for j in 0..fl.res[f as usize].len() {
                let r = fl.res[f as usize][j] as usize;
                rt.ensure(r, fl, sid);
                if !rt.saturated_new(r) {
                    continue;
                }
                for k in 0..rt.crossers[r].len() {
                    let (g, _) = rt.crossers[r][k];
                    add_to_scope(g, t, fl, scope, sid);
                }
            }
        }
        if scope.len() == before {
            // Nothing new to add locally; only the global solve can fix it.
            round = MAX_EXPANSIONS;
        }
        round += 1;
    }

    // Commit: reschedule exactly the flows whose rate changed bitwise; an
    // unchanged flow's scheduled event still fires at the right absolute
    // time (linear drain), so it is kept.
    for &f in scope.iter() {
        let fu = f as usize;
        let (old, new) = (fl.old_rate[fu], fl.rate[fu]);
        if new.to_bits() == old.to_bits() {
            continue;
        }
        assert!(
            new.is_finite() && new > 0.0,
            "re-solve assigned degenerate rate {new} to flow {f} at t={t}"
        );
        fl.version[fu] += 1;
        let ev = Event {
            time: t + fl.remaining[fu] / new,
            flow: f,
            version: fl.version[fu],
        };
        let q = queue.get_or_insert_with(|| {
            // First-ever schedule: size the calendar from this batch's
            // projected completions. Mis-tuning degrades to linear bucket
            // scans / cursor jumps, never wrong order.
            let k = scope.len();
            let mean_dt = scope
                .iter()
                .map(|&f| fl.remaining[f as usize] / fl.rate[f as usize].max(1e-30))
                .sum::<f64>()
                / k as f64;
            let width = (mean_dt / 4.0).max(1e-9);
            CalendarQueue::new((2 * k).clamp(64, 1 << 17), width)
        });
        q.push(ev);
    }
}

/// The production engine: same fluid model and capacity table as
/// [`crate::engine::Engine`], selectable via
/// [`crate::EngineKind::Incremental`] (the default).
#[derive(Debug)]
pub struct IncrementalEngine {
    caps: Vec<f64>,
    num_links: usize,
}

impl IncrementalEngine {
    /// Build the resource capacity table for a topology and deployment.
    ///
    /// Panics if any resource capacity is non-positive or non-finite; use
    /// [`IncrementalEngine::try_new`] to handle that case as an error.
    pub fn new(topo: &Topology, placement: &BoxPlacement, cfg: &ExperimentConfig) -> Self {
        Self::try_new(topo, placement, cfg).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Build the engine, rejecting zero/negative/non-finite capacities.
    pub fn try_new(
        topo: &Topology,
        placement: &BoxPlacement,
        cfg: &ExperimentConfig,
    ) -> Result<Self, EngineError> {
        let caps = capacity_table(topo, placement, cfg);
        validate_caps(&caps)?;
        Ok(Self {
            caps,
            num_links: topo.num_links(),
        })
    }

    /// Run all flows to completion. See [`IncrementalEngine::run_stats`].
    pub fn run(&mut self, flows: Vec<FlowSpec>) -> SimResult {
        self.run_stats(flows).0
    }

    /// Run all flows to completion, also returning event/re-solve counters.
    pub fn run_stats(&mut self, flows: Vec<FlowSpec>) -> (SimResult, EngineStats) {
        let n = flows.len();
        let res_lists: Vec<Vec<u32>> = flows
            .iter()
            .map(|f| {
                f.resources
                    .iter()
                    .map(|r| resource_index(self.num_links, *r) as u32)
                    .collect()
            })
            .collect();
        let mut parent: Vec<Option<u32>> = vec![None; n];
        for (i, f) in flows.iter().enumerate() {
            for &c in &f.children {
                assert!(
                    parent[c as usize].is_none(),
                    "flow {c} has more than one parent"
                );
                parent[c as usize] = Some(i as u32);
            }
        }

        let mut fl = Flows {
            slot: res_lists.iter().map(|l| vec![0; l.len()]).collect(),
            res: res_lists,
            remaining: flows.iter().map(|f| f.size).collect(),
            settled_at: vec![0.0; n],
            rate: vec![0.0; n],
            old_rate: vec![0.0; n],
            version: vec![0; n],
            in_scope: vec![0; n],
            checked: vec![0; n],
        };
        let mut rt = Resources::new(self.caps.clone());
        let mut state: Vec<State> = vec![State::Pending; n];
        let mut finish: Vec<f64> = vec![0.0; n];
        let mut open_children: Vec<u32> = flows.iter().map(|f| f.children.len() as u32).collect();
        let mut open = n;

        let mut active_list: Vec<u32> = Vec::new();
        let mut active_pos: Vec<u32> = vec![u32::MAX; n];
        let mut alloc = Allocator::new(rt.caps.len());
        let mut queue: Option<CalendarQueue> = None;

        // Scratch buffers reused across re-solves.
        let mut scope: Vec<u32> = Vec::new();
        let mut touched: Vec<u32> = Vec::new();
        let mut flagged: Vec<u32> = Vec::new();
        let mut failures: Vec<u32> = Vec::new();
        let mut seeds: Vec<u32> = Vec::new();
        let mut scope_id = 0u64;

        let mut stats = EngineStats::default();

        // Starts sorted descending so the earliest pops from the back.
        let mut starts: Vec<(f64, u32)> = flows
            .iter()
            .enumerate()
            .map(|(i, f)| (f.start, i as u32))
            .collect();
        starts.sort_by(|a, b| b.0.total_cmp(&a.0));

        // Completes `f` at `t`, cascading to drained parents whose last
        // child just finished (same semantics as the reference engine).
        fn complete(
            mut f: u32,
            t: f64,
            state: &mut [State],
            finish: &mut [f64],
            open_children: &mut [u32],
            parent: &[Option<u32>],
            open: &mut usize,
        ) {
            loop {
                if state[f as usize] == State::Done {
                    debug_assert!(false, "flow {f} completed twice");
                    break;
                }
                state[f as usize] = State::Done;
                finish[f as usize] = t;
                *open -= 1;
                match parent[f as usize] {
                    Some(p) => {
                        open_children[p as usize] -= 1;
                        if open_children[p as usize] == 0 && state[p as usize] == State::Drained {
                            f = p;
                        } else {
                            break;
                        }
                    }
                    None => break,
                }
            }
        }

        let mut t = 0.0f64;
        while open > 0 {
            // Admit every flow starting now (same 1e-12 slack as the
            // reference engine's event batching).
            seeds.clear();
            while let Some(&(s, i)) = starts.last() {
                if s > t + 1e-12 {
                    break;
                }
                starts.pop();
                stats.starts += 1;
                let iu = i as usize;
                debug_assert_eq!(state[iu], State::Pending);
                if flow::delivered(fl.remaining[iu]) {
                    // Zero-byte flow: immediately drained.
                    if open_children[iu] == 0 {
                        complete(
                            i,
                            t,
                            &mut state,
                            &mut finish,
                            &mut open_children,
                            &parent,
                            &mut open,
                        );
                    } else {
                        state[iu] = State::Drained;
                    }
                } else {
                    state[iu] = State::Active;
                    fl.settled_at[iu] = t;
                    for (j, &r) in fl.res[iu].iter().enumerate() {
                        fl.slot[iu][j] = rt.crossers[r as usize].len() as u32;
                        rt.crossers[r as usize].push((i, j as u32));
                    }
                    active_pos[iu] = active_list.len() as u32;
                    active_list.push(i);
                    seeds.extend_from_slice(&fl.res[iu]);
                }
            }
            if !seeds.is_empty() {
                seeds.sort_unstable();
                seeds.dedup();
                resolve(
                    t,
                    &seeds,
                    &mut fl,
                    &mut rt,
                    &mut scope,
                    &mut touched,
                    &mut flagged,
                    &mut failures,
                    &active_list,
                    &mut alloc,
                    &mut queue,
                    &mut scope_id,
                    &mut stats,
                );
            }

            // Next event: earliest projected completion vs. next start.
            let next_start = starts.last().map(|&(s, _)| s);
            let ev = queue.as_mut().and_then(|q| q.pop_min(&fl.version));
            let ev = match (ev, next_start) {
                (None, None) => {
                    // Only drained flows could remain, and the cascade has
                    // already completed them (their children are all done).
                    debug_assert_eq!(open, 0, "drained flows stuck with open children");
                    break;
                }
                (None, Some(s)) => {
                    t = t.max(s);
                    continue;
                }
                (Some(e), Some(s)) if s < e.time => {
                    // The start comes first; the popped event is still
                    // valid, so put it back untouched.
                    queue.as_mut().expect("queue produced an event").push(e);
                    t = t.max(s);
                    continue;
                }
                (Some(e), _) => e,
            };

            stats.completions += 1;
            t = t.max(ev.time);
            let f = ev.flow as usize;
            debug_assert_eq!(state[f], State::Active);
            fl.settle(f, t);
            if !flow::delivered(fl.remaining[f]) {
                // Settlement rounding left residual bytes: reschedule.
                stats.spurious_wakeups += 1;
                fl.version[f] += 1;
                queue
                    .as_mut()
                    .expect("queue produced an event")
                    .push(Event {
                        time: t + fl.remaining[f] / fl.rate[f],
                        flow: ev.flow,
                        version: fl.version[f],
                    });
                continue;
            }
            fl.remaining[f] = 0.0;
            // Deactivate: release the flow's crosser slots and list entry.
            for j in 0..fl.res[f].len() {
                let r = fl.res[f][j] as usize;
                let s = fl.slot[f][j] as usize;
                rt.crossers[r].swap_remove(s);
                if let Some(&(mf, mj)) = rt.crossers[r].get(s) {
                    fl.slot[mf as usize][mj as usize] = s as u32;
                }
            }
            let pos = active_pos[f] as usize;
            active_list.swap_remove(pos);
            if let Some(&moved) = active_list.get(pos) {
                active_pos[moved as usize] = pos as u32;
            }
            active_pos[f] = u32::MAX;
            fl.rate[f] = 0.0;
            fl.version[f] += 1;
            if open_children[f] == 0 {
                complete(
                    ev.flow,
                    t,
                    &mut state,
                    &mut finish,
                    &mut open_children,
                    &parent,
                    &mut open,
                );
            } else {
                state[f] = State::Drained;
            }

            // Re-solve around the freed capacity: the departed flow's path.
            seeds.clear();
            seeds.extend_from_slice(&fl.res[f]);
            resolve(
                t,
                &seeds,
                &mut fl,
                &mut rt,
                &mut scope,
                &mut touched,
                &mut flagged,
                &mut failures,
                &active_list,
                &mut alloc,
                &mut queue,
                &mut scope_id,
                &mut stats,
            );
        }
        if let Some(q) = &queue {
            stats.stale_discards = q.stale_discards();
        }

        let mut link_bytes = vec![0.0; self.num_links];
        for f in &flows {
            for r in &f.resources {
                if let Resource::Link(l) = r {
                    link_bytes[l.0 as usize] += f.size;
                }
            }
        }
        let records = flows
            .iter()
            .enumerate()
            .map(|(i, f)| FlowRecord {
                size: f.size,
                start: f.start,
                finish: finish[i],
                kind: f.kind,
                request: f.request,
            })
            .collect();
        (
            SimResult {
                records,
                link_bytes,
                makespan: t,
            },
            stats,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deployment::Deployment;
    use crate::flow::SegmentKind;
    use crate::topology::TopologyConfig;
    use crate::{EngineKind, Strategy, GBPS};

    fn quick_cfg() -> (crate::Topology, ExperimentConfig) {
        let topo = crate::Topology::build(&TopologyConfig::quick());
        let cfg = ExperimentConfig {
            topology: topo.config.clone(),
            workload: crate::WorkloadConfig::default(),
            strategy: Strategy::Direct,
            deployment: Deployment::None,
            box_rate: 9.2 * GBPS,
            box_link: 10.0 * GBPS,
            engine: EngineKind::Incremental,
        };
        (topo, cfg)
    }

    #[test]
    fn single_flow_matches_closed_form() {
        let (topo, cfg) = quick_cfg();
        let placement = BoxPlacement::new(&topo, &cfg.deployment);
        let mut eng = IncrementalEngine::new(&topo, &placement, &cfg);
        let route = crate::routing::server_route(&topo, topo.server(0), topo.server(1), 0);
        let size = 1e6;
        let (res, stats) = eng.run_stats(vec![FlowSpec::background(size, route.links, 0.0)]);
        let expected = size / GBPS;
        let fct = res.records[0].fct();
        assert!(
            (fct - expected).abs() < 1e-6 * expected,
            "fct {fct} expected {expected}"
        );
        assert_eq!(stats.starts, 1);
        assert_eq!(stats.completions, 1);
    }

    #[test]
    fn staggered_sharing_matches_reference_staircase() {
        let (topo, cfg) = quick_cfg();
        let placement = BoxPlacement::new(&topo, &cfg.deployment);
        let mut eng = IncrementalEngine::new(&topo, &placement, &cfg);
        let r1 = crate::routing::server_route(&topo, topo.server(0), topo.server(1), 0);
        let r2 = crate::routing::server_route(&topo, topo.server(2), topo.server(1), 0);
        let res = eng.run(vec![
            FlowSpec::background(1e6, r1.links, 0.0),
            FlowSpec::background(3e6, r2.links, 0.0),
        ]);
        let t_short = 2e6 / GBPS;
        let t_long = 4e6 / GBPS;
        assert!((res.records[0].fct() - t_short).abs() < 1e-6 * t_short);
        assert!((res.records[1].fct() - t_long).abs() < 1e-6 * t_long);
    }

    #[test]
    fn completion_gating_matches_reference() {
        let (topo, cfg) = quick_cfg();
        let placement = BoxPlacement::new(&topo, &cfg.deployment);
        let mut eng = IncrementalEngine::new(&topo, &placement, &cfg);
        let rin = crate::routing::server_route(&topo, topo.server(0), topo.server(1), 0);
        let rout = crate::routing::server_route(&topo, topo.server(1), topo.server(2), 0);
        let child = FlowSpec::leaf(
            2e6,
            rin.links.into_iter().map(Resource::Link).collect(),
            0.0,
            SegmentKind::WorkerPartial,
            0,
        );
        let parent = FlowSpec {
            size: 1e6,
            resources: rout.links.into_iter().map(Resource::Link).collect(),
            children: vec![0],
            alpha: 0.5,
            local_input: 0.0,
            start: 0.0,
            kind: SegmentKind::AggregatedOutput,
            request: Some(0),
        };
        let res = eng.run(vec![child, parent]);
        let t_child = 2e6 / GBPS;
        assert!((res.records[0].fct() - t_child).abs() < 1e-6 * t_child);
        assert!(
            (res.records[1].finish - t_child).abs() < 1e-6 * t_child,
            "parent finish {} expected {t_child}",
            res.records[1].finish,
        );
    }

    /// The squeeze cascade: removing a flow can *lower* a third party's
    /// rate (max-min is not monotone under removal). A departure on one
    /// link lets a two-link flow rise, which must squeeze a flow that
    /// never shared anything with the departed one — reachable only
    /// through certificate verification, not through the departed flow's
    /// path.
    #[test]
    fn certificate_expansion_squeezes_third_party() {
        let (topo, cfg) = quick_cfg();
        let placement = BoxPlacement::new(&topo, &cfg.deployment);
        let ra = crate::routing::server_route(&topo, topo.server(0), topo.server(1), 0);
        let rb = crate::routing::server_route(&topo, topo.server(0), topo.server(2), 0);
        let rc = crate::routing::server_route(&topo, topo.server(3), topo.server(2), 0);
        // C (small, into server 2) finishes first; its departure frees
        // server 2's downlink, B rises to its server-0-uplink share and
        // squeezes A, which shares only that uplink with B.
        let specs = vec![
            FlowSpec::background(8e6, ra.links.clone(), 0.0),
            FlowSpec::background(8e6, rb.links.clone(), 0.0),
            FlowSpec::background(1e6, rc.links.clone(), 0.0),
        ];
        let mut inc = IncrementalEngine::new(&topo, &placement, &cfg);
        let got = inc.run(specs.clone());
        let mut reference = crate::engine::Engine::new(&topo, &placement, &cfg);
        let want = reference.run(specs);
        for (i, (a, b)) in got.records.iter().zip(&want.records).enumerate() {
            assert!(
                (a.finish - b.finish).abs() <= 1e-6 * b.finish.max(1e-9),
                "flow {i}: incremental {} vs reference {}",
                a.finish,
                b.finish
            );
        }
    }
}
