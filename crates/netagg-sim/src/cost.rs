//! Equipment cost model for the upgrade comparison of Fig. 3.
//!
//! Prices follow the study the paper adopts (Popa et al., "A Cost Comparison
//! of Data Center Network Architectures", CoNEXT 2011), rounded to
//! catalogue-style per-port and per-server figures. Absolute dollars are
//! illustrative; the harness reports both dollars and cost *relative to the
//! 10 Gbps over-subscribed upgrade*, which is the comparison the paper
//! draws.

use crate::deployment::Deployment;
use crate::topology::TopologyConfig;
use crate::{ExperimentConfig, Strategy, GBPS};

/// Per-unit equipment prices, US dollars.
#[derive(Debug, Clone)]
pub struct CostModel {
    /// Switch cost per 1 Gbps port.
    pub port_1g: f64,
    /// Switch cost per 10 Gbps port.
    pub port_10g: f64,
    /// Switch cost per 40 Gbps port.
    pub port_40g: f64,
    /// 10 Gbps server NIC cost.
    pub nic_10g: f64,
    /// 40 Gbps server NIC cost.
    pub nic_40g: f64,
    /// A commodity server suitable as an agg box (the paper's testbed spec:
    /// 16-core Xeon, 32 GB RAM).
    pub agg_box_server: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        Self {
            port_1g: 100.0,
            port_10g: 500.0,
            port_40g: 2500.0,
            nic_10g: 300.0,
            nic_40g: 1500.0,
            agg_box_server: 2500.0,
        }
    }
}

/// The five configurations Fig. 3 compares (plus the unchanged base).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UpgradeOption {
    /// Unchanged 1 Gbps, 1:4 over-subscribed network with rack-level
    /// aggregation: the normalisation baseline.
    Base,
    /// 10 Gbps edge links, full-bisection fabric.
    FullBisec10G,
    /// 10 Gbps edge links, 1:4 over-subscription kept.
    Oversub10G,
    /// 40 Gbps edge links, full-bisection fabric.
    FullBisec40G,
    /// Agg boxes on every switch of the base network.
    NetAgg,
    /// Agg boxes only at the aggregation (middle) tier of the base network.
    IncrementalNetAgg,
}

impl UpgradeOption {
    /// Every configuration of Fig. 3, in presentation order.
    pub const ALL: [UpgradeOption; 6] = [
        UpgradeOption::Base,
        UpgradeOption::FullBisec10G,
        UpgradeOption::Oversub10G,
        UpgradeOption::FullBisec40G,
        UpgradeOption::NetAgg,
        UpgradeOption::IncrementalNetAgg,
    ];

    /// Display label used in the harness tables.
    pub fn label(&self) -> &'static str {
        match self {
            UpgradeOption::Base => "Base-1G",
            UpgradeOption::FullBisec10G => "FullBisec-10G",
            UpgradeOption::Oversub10G => "Oversub-10G",
            UpgradeOption::FullBisec40G => "FullBisec-40G",
            UpgradeOption::NetAgg => "NetAgg",
            UpgradeOption::IncrementalNetAgg => "Incremental-NetAgg",
        }
    }

    /// The experiment configuration this upgrade corresponds to, derived
    /// from a base (1 Gbps, over-subscribed, rack-level) configuration.
    pub fn experiment(&self, base: &ExperimentConfig) -> ExperimentConfig {
        let mut cfg = base.clone();
        cfg.strategy = Strategy::RackLevel;
        cfg.deployment = Deployment::None;
        match self {
            UpgradeOption::Base => {}
            UpgradeOption::FullBisec10G => {
                cfg.topology.edge_capacity = 10.0 * GBPS;
                cfg.topology.oversub = 1.0;
            }
            UpgradeOption::Oversub10G => {
                cfg.topology.edge_capacity = 10.0 * GBPS;
            }
            UpgradeOption::FullBisec40G => {
                cfg.topology.edge_capacity = 40.0 * GBPS;
                cfg.topology.oversub = 1.0;
            }
            UpgradeOption::NetAgg => {
                cfg.strategy = Strategy::NetAgg;
                cfg.deployment = Deployment::all();
            }
            UpgradeOption::IncrementalNetAgg => {
                cfg.strategy = Strategy::NetAgg;
                cfg.deployment = Deployment::incremental();
            }
        }
        cfg
    }

    /// Upgrade cost in dollars relative to the base network.
    pub fn upgrade_cost(&self, topo: &TopologyConfig, prices: &CostModel) -> f64 {
        // Structural port counts of the base fabric (each link = 2 ports).
        let edge_links = topo.num_servers() as f64;
        let uplink_links = (topo.num_tors() * topo.aggs_per_pod) as f64;
        let core_links = (topo.num_agg_switches() * (topo.cores / topo.aggs_per_pod)) as f64;
        let fabric_ports = 2.0 * (edge_links + uplink_links + core_links);
        let servers = topo.num_servers() as f64;
        // A full-bisection fabric needs `oversub x` more uplink and core
        // capacity, i.e. proportionally more ports at those tiers.
        let full_bisec_ports = 2.0 * (edge_links + topo.oversub * (uplink_links + core_links));
        match self {
            UpgradeOption::Base => 0.0,
            UpgradeOption::FullBisec10G => {
                full_bisec_ports * prices.port_10g + servers * prices.nic_10g
            }
            UpgradeOption::Oversub10G => fabric_ports * prices.port_10g + servers * prices.nic_10g,
            UpgradeOption::FullBisec40G => {
                full_bisec_ports * prices.port_40g + servers * prices.nic_40g
            }
            UpgradeOption::NetAgg => {
                let boxes = topo.num_switches() as f64;
                boxes * (prices.agg_box_server + prices.nic_10g + prices.port_10g)
            }
            UpgradeOption::IncrementalNetAgg => {
                let boxes = topo.num_agg_switches() as f64;
                boxes * (prices.agg_box_server + prices.nic_10g + prices.port_10g)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cost_ordering_matches_the_paper() {
        let topo = TopologyConfig::paper();
        let prices = CostModel::default();
        let cost = |o: UpgradeOption| o.upgrade_cost(&topo, &prices);
        // Fig. 3 ordering: 40G full-bisection most expensive, then 10G
        // full-bisection, then 10G over-subscribed; NetAgg a fraction of
        // that; incremental cheapest (besides base).
        assert!(cost(UpgradeOption::FullBisec40G) > cost(UpgradeOption::FullBisec10G));
        assert!(cost(UpgradeOption::FullBisec10G) > cost(UpgradeOption::Oversub10G));
        assert!(cost(UpgradeOption::Oversub10G) > cost(UpgradeOption::NetAgg));
        assert!(cost(UpgradeOption::NetAgg) > cost(UpgradeOption::IncrementalNetAgg));
        assert_eq!(cost(UpgradeOption::Base), 0.0);
    }

    #[test]
    fn netagg_is_a_small_fraction_of_network_upgrades() {
        let topo = TopologyConfig::paper();
        let prices = CostModel::default();
        let netagg = UpgradeOption::NetAgg.upgrade_cost(&topo, &prices);
        let oversub = UpgradeOption::Oversub10G.upgrade_cost(&topo, &prices);
        let frac = netagg / oversub;
        assert!(
            frac < 0.5,
            "NetAgg should cost well under half of Oversub-10G, got {frac}"
        );
    }

    #[test]
    fn experiment_configs_reflect_upgrades() {
        let base = ExperimentConfig::quick();
        let e = UpgradeOption::FullBisec10G.experiment(&base);
        assert_eq!(e.topology.oversub, 1.0);
        assert!((e.topology.edge_capacity - 10.0 * GBPS).abs() < 1.0);
        let n = UpgradeOption::NetAgg.experiment(&base);
        assert_eq!(n.strategy, Strategy::NetAgg);
        assert_eq!(n.deployment, Deployment::all());
        let i = UpgradeOption::IncrementalNetAgg.experiment(&base);
        assert_eq!(i.deployment, Deployment::incremental());
    }
}
