//! Expansion of a workload into flow (segment) trees under an aggregation
//! strategy.
//!
//! The strategies are the ones the paper evaluates (Section 2.2 / 4.1):
//!
//! * [`Strategy::Direct`] — no aggregation, every worker sends its partial
//!   result straight to the master.
//! * [`Strategy::RackLevel`] — one worker per rack collects the rack's
//!   partial results, aggregates and sends the reduced output to the master.
//! * [`Strategy::DAry`] — a d-ary aggregation tree of *edge servers*
//!   (`d = 1` is the paper's "chain", `d = 2` its "binary").
//! * [`Strategy::NetAgg`] — on-path aggregation at agg boxes attached to the
//!   switches along each worker's ECMP route to the master.
//!
//! Reduction semantics: `alpha` is the paper's *output ratio* — the ratio
//! of the final output to the intermediate data (from the production
//! traces the paper cites). The aggregation functions the paper motivates
//! (top-k, max, bounded key sets) have outputs bounded by the final result
//! size at *every* level of the tree, so a node merging two or more inputs
//! outputs `min(bytes_received, alpha x request_total_raw)`: reduction
//! happens at each hop down to the final size, and never below what was
//! received. Single-input "aggregation" is forwarding. This model
//! reproduces the paper's per-hop claims simultaneously: a chain's hops
//! carry the clamp (growing link usage, Fig. 9, and the alpha crossover of
//! Fig. 8), while NetAgg's upper-tier boxes genuinely relieve the
//! over-subscribed core (Figs. 11/12).

use crate::deployment::BoxPlacement;
use crate::flow::{BoxId, FlowSpec, Resource, SegmentKind};
use crate::routing::{self, mix};
use crate::topology::{NodeId, Topology};
use crate::workload::{Request, Workload};
use crate::ExperimentConfig;
use std::collections::HashMap;

/// How NetAgg picks the ECMP hash that determines a request's aggregation
/// tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TreePolicy {
    /// Hash per request id (the paper's design: multiple trees per
    /// application, load-balanced by request/key hashing).
    PerRequest,
    /// A single tree shared by all requests (ablation: loses path
    /// diversity).
    Single,
}

/// Aggregation strategy under evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// No aggregation: workers send partial results straight to the master.
    Direct,
    /// One designated aggregator server per rack (Section 2.2).
    RackLevel,
    /// d-ary edge-server tree; `DAry(1)` = chain, `DAry(2)` = binary.
    DAry(u32),
    /// On-path aggregation at agg boxes (the paper's system).
    NetAgg,
    /// NetAgg with an explicit tree policy (ablation).
    NetAggWith(TreePolicy),
}

impl Strategy {
    /// Short label used in harness tables.
    pub fn label(&self) -> &'static str {
        match self {
            Strategy::Direct => "direct",
            Strategy::RackLevel => "rack",
            Strategy::DAry(1) => "chain",
            Strategy::DAry(2) => "binary",
            Strategy::DAry(_) => "d-ary",
            Strategy::NetAgg => "netagg",
            Strategy::NetAggWith(_) => "netagg-ablate",
        }
    }
}

/// Output size of an aggregation point that received `bytes_in` over
/// `n_inputs` inputs, within a request whose raw partials total
/// `total_raw`. Merging at least two inputs reduces towards the final
/// result size `alpha x total_raw`; a single input passes through.
fn reduce(bytes_in: f64, n_inputs: usize, alpha: f64, total_raw: f64) -> f64 {
    if n_inputs >= 2 {
        bytes_in.min(alpha * total_raw)
    } else {
        bytes_in
    }
}

/// Expand the whole workload into engine flows.
pub fn expand(
    topo: &Topology,
    placement: &BoxPlacement,
    workload: &Workload,
    cfg: &ExperimentConfig,
) -> Vec<FlowSpec> {
    let mut flows = Vec::new();
    for (i, b) in workload.background.iter().enumerate() {
        let route = routing::server_route(topo, b.src, b.dst, mix(0xbac0 ^ i as u64));
        flows.push(FlowSpec::background(b.size, route.links.clone(), b.start));
    }
    let alpha = cfg.workload.alpha;
    for req in &workload.requests {
        match cfg.strategy {
            Strategy::Direct => expand_direct(topo, req, &mut flows),
            Strategy::RackLevel => expand_rack(topo, req, alpha, &mut flows),
            Strategy::DAry(d) => expand_dary(topo, req, alpha, d.max(1), &mut flows),
            Strategy::NetAgg => expand_netagg(
                topo,
                placement,
                req,
                alpha,
                TreePolicy::PerRequest,
                &mut flows,
            ),
            Strategy::NetAggWith(policy) => {
                expand_netagg(topo, placement, req, alpha, policy, &mut flows)
            }
        }
    }
    flows
}

fn links(route: &routing::Route) -> Vec<Resource> {
    route.links.iter().copied().map(Resource::Link).collect()
}

fn expand_direct(topo: &Topology, req: &Request, out: &mut Vec<FlowSpec>) {
    for ((w, &size), &start) in req.workers.iter().zip(&req.sizes).zip(&req.starts) {
        let route = routing::server_route(topo, *w, req.master, mix(req.id as u64));
        out.push(FlowSpec::leaf(
            size,
            links(&route),
            start,
            SegmentKind::WorkerPartial,
            req.id,
        ));
    }
}

/// A data source during edge-tree construction: `carried` bytes of (possibly
/// already reduced) data sitting on `server`, fed by the network flows in
/// `inbound` plus `local` bytes of the server's own partial result.
struct Source {
    server: NodeId,
    /// Bytes currently held (possibly reduced output of prior merges).
    carried: f64,
    inbound: Vec<u32>,
    local: f64,
    start: f64,
}

impl Source {
    fn worker(req: &Request, idx: usize) -> Self {
        Self {
            server: req.workers[idx],
            carried: req.sizes[idx],
            inbound: Vec::new(),
            local: req.sizes[idx],
            start: req.starts[idx],
        }
    }

    /// Emit the network flow that ships this source's carried data to
    /// `resources`. The flow's children are the network flows that fed the
    /// data, so the engine's production coupling spans the whole pipeline.
    ///
    /// Note: when a source aggregated over several levels on the same
    /// server, `alpha` here is the *end-to-end* reduction
    /// (`carried / raw input bytes`), a slightly conservative single-stage
    /// approximation of the exact multi-stage pipeline.
    fn ship(&self, out: &mut Vec<FlowSpec>, resources: Vec<Resource>, request: u32) -> u32 {
        let raw_input: f64 = self.local
            + self
                .inbound
                .iter()
                .map(|&f| out[f as usize].size)
                .sum::<f64>();
        let id = out.len() as u32;
        out.push(FlowSpec {
            size: self.carried,
            resources,
            children: self.inbound.clone(),
            alpha: if raw_input > 0.0 {
                self.carried / raw_input
            } else {
                1.0
            },
            local_input: self.local,
            start: self.start,
            kind: if self.inbound.is_empty() {
                SegmentKind::WorkerPartial
            } else {
                SegmentKind::AggregatedOutput
            },
            request: Some(request),
        });
        id
    }
}

/// The designated rack aggregator: one fixed server per rack, shared by
/// every request (Section 2.2: "one server per rack acts as an aggregator
/// and receives all intermediate data from the workers in the same rack" —
/// hence the paper's per-worker ceiling of `edge_rate / servers_per_rack`).
fn rack_aggregator(topo: &Topology, rack: u32) -> NodeId {
    topo.server(rack * topo.config.servers_per_tor)
}

fn expand_rack(topo: &Topology, req: &Request, alpha: f64, out: &mut Vec<FlowSpec>) {
    // Group workers by rack; the rack's designated aggregator server
    // collects, reduces and forwards to the master.
    let total_raw: f64 = req.sizes.iter().sum();
    let mut racks: HashMap<u32, Vec<usize>> = HashMap::new();
    for (i, w) in req.workers.iter().enumerate() {
        racks.entry(topo.rack_of_server(*w)).or_default().push(i);
    }
    let mut rack_ids: Vec<u32> = racks.keys().copied().collect();
    rack_ids.sort_unstable();
    for rack in rack_ids {
        let members = &racks[&rack];
        let agg_server = rack_aggregator(topo, rack);
        let mut leader = Source {
            server: agg_server,
            carried: 0.0,
            inbound: Vec::new(),
            local: 0.0,
            start: f64::INFINITY,
        };
        let mut received = 0.0;
        for &m in members {
            let sender = Source::worker(req, m);
            leader.start = leader.start.min(sender.start);
            received += sender.carried;
            if sender.server == agg_server {
                // The aggregator hosts this worker: its partial is local.
                leader.local += sender.local;
                continue;
            }
            let route = routing::server_route(
                topo,
                sender.server,
                agg_server,
                mix(req.id as u64 ^ m as u64),
            );
            let flow = sender.ship(out, links(&route), req.id);
            leader.inbound.push(flow);
        }
        leader.carried = reduce(received, members.len(), alpha, total_raw);
        if agg_server == req.master {
            // Degenerate: the aggregator is the master; data has arrived.
            continue;
        }
        let route = routing::server_route(topo, agg_server, req.master, mix(req.id as u64));
        leader.ship(out, links(&route), req.id);
    }
}

/// d-ary tree of edge servers. `d = 1` folds the workers into a chain
/// (w1 -> w2 -> ... -> master); `d >= 2` groups `d + 1` sources per level
/// (a leader receiving from `d` senders) until one source remains.
fn expand_dary(topo: &Topology, req: &Request, alpha: f64, d: u32, out: &mut Vec<FlowSpec>) {
    let total_raw: f64 = req.sizes.iter().sum();
    let mut sources: Vec<Source> = (0..req.workers.len())
        .map(|i| Source::worker(req, i))
        .collect();

    if d == 1 {
        // Chain: fold left. Each hop ships the accumulated data to the next
        // worker, which merges it with its own partial.
        let mut iter = sources.into_iter();
        let mut acc = iter.next().expect("request has workers");
        for mut next in iter {
            let route = routing::server_route(
                topo,
                acc.server,
                next.server,
                mix(req.id as u64 ^ (next.server.0 as u64) << 20),
            );
            let acc_carried = acc.carried;
            let flow = acc.ship(out, links(&route), req.id);
            next.inbound.push(flow);
            next.start = next.start.min(acc.start);
            next.carried = reduce(acc_carried + next.local, 2, alpha, total_raw);
            acc = next;
        }
        let route = routing::server_route(topo, acc.server, req.master, mix(req.id as u64));
        acc.ship(out, links(&route), req.id);
        return;
    }

    let group = d as usize + 1;
    let mut level = 0u64;
    while sources.len() > 1 {
        let mut next_level = Vec::with_capacity(sources.len() / group + 1);
        while !sources.is_empty() {
            let take = group.min(sources.len());
            let mut chunk: Vec<Source> = sources.drain(..take).collect();
            if chunk.len() == 1 {
                next_level.push(chunk.pop().unwrap());
                continue;
            }
            let mut leader = chunk.remove(0);
            let n = chunk.len() + 1;
            let mut received = leader.carried;
            for (k, sender) in chunk.into_iter().enumerate() {
                let route = routing::server_route(
                    topo,
                    sender.server,
                    leader.server,
                    mix(req.id as u64 ^ (level << 32) ^ k as u64),
                );
                received += sender.carried;
                let flow = sender.ship(out, links(&route), req.id);
                leader.inbound.push(flow);
                leader.start = leader.start.min(out[flow as usize].start);
            }
            leader.carried = reduce(received, n, alpha, total_raw);
            next_level.push(leader);
        }
        sources = next_level;
        level += 1;
    }
    let acc = sources.pop().expect("one source remains");
    let route = routing::server_route(topo, acc.server, req.master, mix(req.id as u64));
    acc.ship(out, links(&route), req.id);
}

fn expand_netagg(
    topo: &Topology,
    placement: &BoxPlacement,
    req: &Request,
    alpha: f64,
    policy: TreePolicy,
    out: &mut Vec<FlowSpec>,
) {
    let hash = match policy {
        TreePolicy::PerRequest => mix(req.id as u64),
        TreePolicy::Single => mix(0),
    };
    // Per-box aggregation node plus the route context needed to reach the
    // next hop.
    struct BoxNode {
        inbound: Vec<u32>,
        earliest_start: f64,
        /// Next box towards the master, with the resources of the hop.
        next: Option<(BoxId, Vec<Resource>)>,
        to_master: Vec<Resource>,
        /// Number of boxes from here to the master (inclusive); larger =
        /// farther upstream. Constant per box for a fixed tree hash.
        depth: usize,
    }
    let total_raw: f64 = req.sizes.iter().sum();
    let mut boxes: HashMap<BoxId, BoxNode> = HashMap::new();

    for ((w, &size), &start) in req.workers.iter().zip(&req.sizes).zip(&req.starts) {
        let route = routing::server_route(topo, *w, req.master, hash);
        let stops: Vec<(usize, BoxId)> = route
            .switches
            .iter()
            .enumerate()
            .filter_map(|(i, sw)| placement.box_for(*sw, hash).map(|b| (i, b)))
            .collect();
        if stops.is_empty() {
            out.push(FlowSpec::leaf(
                size,
                links(&route),
                start,
                SegmentKind::WorkerPartial,
                req.id,
            ));
            continue;
        }
        // Worker -> first on-path box.
        let (first_pos, first_box) = stops[0];
        let mut res: Vec<Resource> = vec![Resource::Link(route.links[0])];
        res.extend(
            route
                .links_between_switches(0, first_pos)
                .iter()
                .map(|l| Resource::Link(*l)),
        );
        res.push(Resource::BoxIn(first_box));
        res.push(Resource::BoxProc(first_box));
        let id = out.len() as u32;
        out.push(FlowSpec::leaf(
            size,
            res,
            start,
            SegmentKind::WorkerPartial,
            req.id,
        ));
        // Register this worker's box chain.
        for (k, &(pos, b)) in stops.iter().enumerate() {
            let depth = stops.len() - k;
            let entry = boxes.entry(b).or_insert_with(|| BoxNode {
                inbound: Vec::new(),
                earliest_start: f64::INFINITY,
                next: None,
                to_master: Vec::new(),
                depth,
            });
            entry.depth = entry.depth.max(depth);
            if k == 0 {
                entry.inbound.push(id);
                entry.earliest_start = entry.earliest_start.min(start);
            }
            if let Some(&(npos, nbox)) = stops.get(k + 1) {
                if entry.next.is_none() {
                    let mut r: Vec<Resource> = vec![Resource::BoxOut(b)];
                    r.extend(
                        route
                            .links_between_switches(pos, npos)
                            .iter()
                            .map(|l| Resource::Link(*l)),
                    );
                    r.push(Resource::BoxIn(nbox));
                    r.push(Resource::BoxProc(nbox));
                    entry.next = Some((nbox, r));
                }
            } else if entry.to_master.is_empty() {
                let mut r: Vec<Resource> = vec![Resource::BoxOut(b)];
                r.extend(
                    route
                        .links_between_switches(pos, route.switches.len() - 1)
                        .iter()
                        .map(|l| Resource::Link(*l)),
                );
                r.push(Resource::Link(*route.links.last().unwrap()));
                entry.to_master = r;
            }
        }
    }
    if boxes.is_empty() {
        return;
    }
    // Map each box to its downstream parent so upstream outputs become
    // parent inputs; emit farthest-from-master first.
    let mut order: Vec<BoxId> = boxes.keys().copied().collect();
    order.sort_by_key(|b| std::cmp::Reverse((boxes[b].depth, b.0)));
    for b in order {
        let bn = &boxes[&b];
        if bn.inbound.is_empty() {
            continue; // pass-through box that ended up with no inputs
        }
        let resources = match &bn.next {
            Some((_, r)) => r.clone(),
            None => bn.to_master.clone(),
        };
        debug_assert!(
            !resources.is_empty(),
            "box without next hop or master route"
        );
        let next_box = bn.next.as_ref().map(|(nb, _)| *nb);
        let total_in: f64 = bn
            .inbound
            .iter()
            .map(|&f| out[f as usize].size)
            .sum::<f64>();
        let n_inputs = bn.inbound.len();
        let size = reduce(total_in, n_inputs, alpha, total_raw);
        let id = out.len() as u32;
        let bn = boxes.get_mut(&b).unwrap();
        out.push(FlowSpec {
            size,
            resources,
            children: bn.inbound.clone(),
            alpha: if total_in > 0.0 { size / total_in } else { 1.0 },
            local_input: 0.0,
            start: bn.earliest_start,
            kind: SegmentKind::AggregatedOutput,
            request: Some(req.id),
        });
        let start = bn.earliest_start;
        if let Some(nb) = next_box {
            let parent = boxes.get_mut(&nb).expect("next box exists");
            parent.inbound.push(id);
            parent.earliest_start = parent.earliest_start.min(start);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deployment::Deployment;
    use crate::topology::TopologyConfig;
    use crate::workload::WorkloadConfig;
    use crate::GBPS;

    fn config(strategy: Strategy) -> ExperimentConfig {
        ExperimentConfig {
            topology: TopologyConfig::quick(),
            workload: WorkloadConfig {
                num_flows: 120,
                ..WorkloadConfig::default()
            },
            strategy,
            deployment: Deployment::all(),
            box_rate: 9.2 * GBPS,
            box_link: 10.0 * GBPS,
            engine: crate::EngineKind::Incremental,
        }
    }

    fn setup(strategy: Strategy) -> Vec<FlowSpec> {
        let cfg = config(strategy);
        let topo = Topology::build(&cfg.topology);
        let placement = BoxPlacement::new(&topo, &cfg.deployment);
        let workload = Workload::generate(&topo, &cfg.workload);
        expand(&topo, &placement, &workload, &cfg)
    }

    fn check_tree_invariants(flows: &[FlowSpec]) {
        for f in flows {
            if f.kind == SegmentKind::AggregatedOutput {
                assert!(!f.children.is_empty(), "aggregated output without children");
                assert!(!f.resources.is_empty(), "aggregated output without a route");
                let input = f.total_input(flows);
                assert!(
                    (f.size - f.alpha * input).abs() < 1e-6 * f.size.max(1.0),
                    "size {} != alpha {} x input {}",
                    f.size,
                    f.alpha,
                    input
                );
                for &c in &f.children {
                    assert!((c as usize) < flows.len());
                }
            }
            assert!(f.alpha.is_finite() && f.alpha > 0.0 && f.alpha <= 1.0 + 1e-9);
            assert!(f.size > 0.0);
        }
    }

    #[test]
    fn direct_strategy_has_no_aggregated_outputs() {
        let flows = setup(Strategy::Direct);
        assert!(flows
            .iter()
            .all(|f| f.kind != SegmentKind::AggregatedOutput));
        check_tree_invariants(&flows);
    }

    #[test]
    fn rack_level_reduces_cross_rack_traffic() {
        let flows = setup(Strategy::RackLevel);
        check_tree_invariants(&flows);
        assert!(flows
            .iter()
            .any(|f| f.kind == SegmentKind::AggregatedOutput));
    }

    #[test]
    fn chain_flows_form_a_chain() {
        let flows = setup(Strategy::DAry(1));
        check_tree_invariants(&flows);
        // Every aggregated output in a chain merges exactly one inbound flow
        // with the local partial.
        for f in &flows {
            if f.kind == SegmentKind::AggregatedOutput {
                assert_eq!(f.children.len(), 1);
            }
        }
    }

    #[test]
    fn binary_tree_invariants() {
        let flows = setup(Strategy::DAry(2));
        check_tree_invariants(&flows);
        assert!(flows
            .iter()
            .any(|f| f.kind == SegmentKind::AggregatedOutput));
    }

    #[test]
    fn netagg_uses_boxes() {
        let flows = setup(Strategy::NetAgg);
        check_tree_invariants(&flows);
        let uses_box = flows.iter().any(|f| {
            f.resources
                .iter()
                .any(|r| matches!(r, Resource::BoxProc(_)))
        });
        assert!(uses_box, "netagg flows must traverse agg boxes");
        for f in &flows {
            if f.kind == SegmentKind::WorkerPartial && f.request.is_some() {
                assert!(
                    matches!(f.resources.last(), Some(Resource::BoxProc(_))),
                    "worker partial should terminate at its ToR box under full deployment"
                );
            }
        }
    }

    #[test]
    fn netagg_without_boxes_degenerates_to_direct() {
        let mut cfg = config(Strategy::NetAgg);
        cfg.deployment = Deployment::None;
        cfg.workload.num_flows = 60;
        let topo = Topology::build(&cfg.topology);
        let placement = BoxPlacement::new(&topo, &cfg.deployment);
        let workload = Workload::generate(&topo, &cfg.workload);
        let flows = expand(&topo, &placement, &workload, &cfg);
        assert!(flows
            .iter()
            .all(|f| f.kind != SegmentKind::AggregatedOutput));
    }

    #[test]
    fn edge_trees_use_more_link_bytes_than_netagg() {
        // The paper's Fig. 9 property: for a large fan-in, chain and binary
        // edge trees consume more link capacity than on-path aggregation,
        // because hop i of a chain carries alpha x i x s.
        let topo = Topology::build(&TopologyConfig::quick());
        let cfg_for = |strategy| ExperimentConfig {
            topology: TopologyConfig::quick(),
            workload: WorkloadConfig::default(),
            strategy,
            deployment: Deployment::all(),
            box_rate: 9.2 * GBPS,
            box_link: 10.0 * GBPS,
            engine: crate::EngineKind::Incremental,
        };
        let workers: Vec<_> = (1..30).map(|i| topo.server(i)).collect();
        let n = workers.len();
        let req = crate::workload::Request {
            id: 0,
            master: topo.server(0),
            workers,
            sizes: vec![100e3; n],
            starts: vec![0.0; n],
        };
        let workload = Workload {
            requests: vec![req],
            background: Vec::new(),
        };
        let weighted = |strategy| -> f64 {
            let cfg = cfg_for(strategy);
            let placement = BoxPlacement::new(&topo, &cfg.deployment);
            let flows = expand(&topo, &placement, &workload, &cfg);
            flows
                .iter()
                .map(|f| {
                    f.size
                        * f.resources
                            .iter()
                            .filter(|r| matches!(r, Resource::Link(_)))
                            .count() as f64
                })
                .sum()
        };
        let netagg = weighted(Strategy::NetAgg);
        let chain = weighted(Strategy::DAry(1));
        let binary = weighted(Strategy::DAry(2));
        let direct = weighted(Strategy::Direct);
        assert!(netagg < direct, "netagg {netagg} vs direct {direct}");
        assert!(netagg < chain, "netagg {netagg} vs chain {chain}");
        assert!(netagg < binary, "netagg {netagg} vs binary {binary}");
    }

    #[test]
    fn netagg_single_tree_policy_is_deterministic_per_request() {
        let a = setup(Strategy::NetAggWith(TreePolicy::Single));
        let b = setup(Strategy::NetAggWith(TreePolicy::Single));
        assert_eq!(a.len(), b.len());
    }

    #[test]
    fn aggregated_outputs_are_clamped_to_final_size() {
        let flows = setup(Strategy::RackLevel);
        // Raw bytes per request (worker partials and local inputs).
        let mut total_raw: HashMap<u32, f64> = HashMap::new();
        for f in &flows {
            if let Some(req) = f.request {
                if f.kind == SegmentKind::WorkerPartial {
                    *total_raw.entry(req).or_insert(0.0) += f.size;
                } else {
                    *total_raw.entry(req).or_insert(0.0) += f.local_input;
                }
            }
        }
        let mut reduced = 0;
        for f in &flows {
            let SegmentKind::AggregatedOutput = f.kind else {
                continue;
            };
            let input = f.total_input(&flows);
            let n_inputs = f.children.len() + usize::from(f.local_input > 0.0);
            assert!(f.size <= input * (1.0 + 1e-9), "output exceeds input");
            if n_inputs >= 2 {
                let cap = 0.1 * total_raw[&f.request.unwrap()];
                assert!(
                    (f.size - input.min(cap)).abs() < 1e-6 * f.size.max(1.0),
                    "size {} != min(input {input}, cap {cap})",
                    f.size
                );
                if f.size < input * (1.0 - 1e-9) {
                    reduced += 1;
                }
            }
        }
        assert!(reduced > 0, "at least one real reduction happens");
    }
}
