//! Flow-level discrete-event simulator for data-centre networks with
//! on-path aggregation, reproducing the simulation half of the NetAgg paper
//! (Mai et al., CoNEXT 2014).
//!
//! The simulator models a three-tier, multi-rooted topology (ECMP-routed)
//! in a fluid TCP max-min flow-fairness model. Aggregation requests become
//! *segment trees*: worker flows feed aggregation points (edge servers for
//! the rack/binary/chain baselines, agg boxes for NetAgg), each of which
//! forwards `alpha` times the bytes it receives. Agg boxes additionally have
//! a finite processing rate shared max-min by the flows they serve.
//!
//! # Quick example
//!
//! ```
//! use netagg_sim::{ExperimentConfig, Strategy, run_experiment};
//!
//! let mut cfg = ExperimentConfig::quick();
//! cfg.strategy = Strategy::NetAgg;
//! let result = run_experiment(&cfg);
//! assert!(result.fct_p99(netagg_sim::metrics::FlowClass::All) > 0.0);
//! ```

#![warn(missing_docs)]

pub mod aggregation;
pub mod cost;
pub mod deployment;
pub mod engine;
pub mod events;
pub mod flow;
pub mod incremental;
pub mod metrics;
pub mod routing;
pub mod topology;
pub mod workload;

pub use aggregation::Strategy;
pub use cost::{CostModel, UpgradeOption};
pub use deployment::{BoxPlacement, Deployment};
pub use engine::{Engine, EngineError, SimResult};
pub use flow::{FlowId, FlowSpec, SegmentKind};
pub use incremental::{EngineStats, IncrementalEngine};
pub use metrics::{FlowClass, Metrics};
pub use topology::{Endpoint, LinkId, NodeId, Topology, TopologyConfig};
pub use workload::{ArrivalProcess, Request, Workload, WorkloadConfig};

/// Gigabits per second expressed in bytes per second (decimal, as used for
/// network link capacities).
pub const GBPS: f64 = 1e9 / 8.0;

/// Which fluid solver runs the experiment.
///
/// Both engines implement the same fluid max-min model and agree within
/// floating-point accumulation order (pinned to 1e-6 relative by
/// `tests/incremental_parity.rs`); they differ only in asymptotics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, serde::Serialize, serde::Deserialize)]
pub enum EngineKind {
    /// Event-driven incremental solver with certificate-verified local
    /// repair ([`IncrementalEngine`]): the production engine, scales to
    /// the 10,240-server fabric.
    #[default]
    Incremental,
    /// Global per-event re-solve ([`Engine`]): simple and quadratic; kept
    /// as the oracle for parity testing and small topologies.
    Reference,
}

/// Complete configuration of one simulation experiment.
#[derive(Debug, Clone)]
pub struct ExperimentConfig {
    /// Topology (size, link speeds, over-subscription).
    pub topology: TopologyConfig,
    /// Workload (flow sizes, fan-in, aggregatable fraction, stragglers).
    pub workload: WorkloadConfig,
    /// Aggregation strategy under test.
    pub strategy: Strategy,
    /// Where agg boxes are deployed (only meaningful for [`Strategy::NetAgg`]).
    pub deployment: Deployment,
    /// Maximum processing rate of one agg box, bytes/s.
    pub box_rate: f64,
    /// Capacity of the link attaching an agg box to its switch, bytes/s.
    pub box_link: f64,
    /// Which fluid solver to run (incremental by default).
    pub engine: EngineKind,
}

impl ExperimentConfig {
    /// Paper-scale default: 1 024 servers, 1 Gbps edge, 1:4 over-subscription,
    /// agg boxes on every switch processing at 9.2 Gbps over 10 Gbps links.
    pub fn paper() -> Self {
        Self {
            topology: TopologyConfig::paper(),
            workload: WorkloadConfig::default(),
            strategy: Strategy::RackLevel,
            deployment: Deployment::all(),
            box_rate: 9.2 * GBPS,
            box_link: 10.0 * GBPS,
            engine: EngineKind::Incremental,
        }
    }

    /// Reduced scale (256 servers) preserving all capacity *ratios*; used as
    /// the default for parameter sweeps so a full figure regenerates in
    /// seconds. Shapes (who wins, crossovers) match the paper-scale runs.
    pub fn default_scale() -> Self {
        Self {
            topology: TopologyConfig::default_scale(),
            ..Self::paper()
        }
    }

    /// Tiny scale for unit tests and doc tests.
    pub fn quick() -> Self {
        let mut cfg = Self {
            topology: TopologyConfig::quick(),
            ..Self::paper()
        };
        cfg.workload.num_flows = 200;
        cfg
    }
}

/// Build the topology, generate the workload, expand it into segment trees
/// under the configured strategy and run the fluid simulation to completion.
pub fn run_experiment(cfg: &ExperimentConfig) -> SimResult {
    run_experiment_stats(cfg).0
}

/// Like [`run_experiment`], additionally returning the engine's event and
/// re-solve counters (all zero for [`EngineKind::Reference`], which does
/// not track them).
pub fn run_experiment_stats(cfg: &ExperimentConfig) -> (SimResult, EngineStats) {
    let topo = Topology::build(&cfg.topology);
    let placement = BoxPlacement::new(&topo, &cfg.deployment);
    let workload = Workload::generate(&topo, &cfg.workload);
    let flows = aggregation::expand(&topo, &placement, &workload, cfg);
    match cfg.engine {
        EngineKind::Incremental => {
            let mut engine = IncrementalEngine::new(&topo, &placement, cfg);
            engine.run_stats(flows)
        }
        EngineKind::Reference => {
            let mut engine = Engine::new(&topo, &placement, cfg);
            (engine.run(flows), EngineStats::default())
        }
    }
}

/// Like [`run_experiment`], but additionally publishing the run's outcome
/// as `sim.*` metrics to `obs` (see DESIGN.md, "Observability"):
/// `sim.flows_completed`, `sim.requests_completed`, `sim.bytes_delivered`,
/// and the latency histograms `sim.fct_us` / `sim.request_completion_us`.
pub fn run_experiment_with_obs(
    cfg: &ExperimentConfig,
    obs: &netagg_obs::MetricsRegistry,
) -> SimResult {
    run_experiment_stats_with_obs(cfg, obs).0
}

/// [`run_experiment_with_obs`] + the engine counters of
/// [`run_experiment_stats`].
pub fn run_experiment_stats_with_obs(
    cfg: &ExperimentConfig,
    obs: &netagg_obs::MetricsRegistry,
) -> (SimResult, EngineStats) {
    let (result, stats) = run_experiment_stats(cfg);
    let flows_completed = obs.counter(netagg_obs::names::SIM_FLOWS_COMPLETED);
    let bytes_delivered = obs.counter(netagg_obs::names::SIM_BYTES_DELIVERED);
    let fct_us = obs.histogram(netagg_obs::names::SIM_FCT_US);
    for r in &result.records {
        flows_completed.inc();
        bytes_delivered.add(r.size as u64);
        fct_us.record((r.fct() * 1e6) as u64);
    }
    // Per-request span: first segment start to last segment finish.
    let mut spans: std::collections::HashMap<u32, (f64, f64)> = std::collections::HashMap::new();
    for r in &result.records {
        if let Some(q) = r.request {
            let e = spans.entry(q).or_insert((f64::INFINITY, 0.0));
            e.0 = e.0.min(r.start);
            e.1 = e.1.max(r.finish);
        }
    }
    let requests_completed = obs.counter(netagg_obs::names::SIM_REQUESTS_COMPLETED);
    let request_completion_us = obs.histogram(netagg_obs::names::SIM_REQUEST_COMPLETION_US);
    for (_, (start, finish)) in spans {
        requests_completed.inc();
        request_completion_us.record(((finish - start) * 1e6) as u64);
    }
    (result, stats)
}
