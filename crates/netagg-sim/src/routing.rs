//! ECMP routing over the three-tier fabric.
//!
//! Routes are computed at the granularity the paper's simulator uses:
//! per-flow ECMP, where the hash input is the flow identifier for background
//! traffic and the *request* identifier for aggregation traffic, so that all
//! partial results of one request traverse the same upper-tier switches (and
//! therefore the same agg boxes — Section 3.1 of the paper).

use crate::topology::{LinkId, NodeId, Topology};

/// A server-to-server route: the ordered switch path plus the full ordered
/// directed-link path (including the server attach links at both ends).
#[derive(Debug, Clone)]
pub struct Route {
    /// Source server.
    pub src: NodeId,
    /// Destination server.
    pub dst: NodeId,
    /// Switches traversed, in order (never empty for distinct servers).
    pub switches: Vec<NodeId>,
    /// Directed links traversed, in order: `src -> sw0 -> .. -> swN -> dst`.
    pub links: Vec<LinkId>,
}

impl Route {
    /// Links of the sub-path from position `from` to position `to` in the
    /// switch path (indices into `switches`, inclusive endpoints). The first
    /// returned link leaves `switches[from]`, the last enters `switches[to]`.
    pub fn links_between_switches(&self, from: usize, to: usize) -> &[LinkId] {
        debug_assert!(from <= to && to < self.switches.len());
        // links[0] is src->sw0; links[i+1] is sw_i -> sw_{i+1}.
        &self.links[from + 1..to + 1]
    }
}

/// Deterministically mix a 64-bit hash (splitmix64 finaliser). Used to derive
/// independent ECMP choices from one request identifier.
pub fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e3779b97f4a7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
    x ^ (x >> 31)
}

/// Compute the ECMP route between two (distinct or equal) servers.
///
/// Equal-cost choices (which pod aggregation switch, which core of the
/// group) are selected by `hash`.
pub fn server_route(topo: &Topology, src: NodeId, dst: NodeId, hash: u64) -> Route {
    assert!(topo.is_server(src) && topo.is_server(dst));
    assert_ne!(src, dst, "route requires distinct endpoints");
    let cfg = &topo.config;
    let rack_s = topo.rack_of_server(src);
    let rack_d = topo.rack_of_server(dst);
    let tor_s = topo.tor(rack_s);
    let tor_d = topo.tor(rack_d);

    let mut switches = vec![tor_s];
    if rack_s != rack_d {
        let pod_s = topo.pod_of_rack(rack_s);
        let pod_d = topo.pod_of_rack(rack_d);
        let j = (mix(hash) % cfg.aggs_per_pod as u64) as u32;
        if pod_s == pod_d {
            switches.push(topo.agg_switch(pod_s, j));
        } else {
            let group = cfg.cores / cfg.aggs_per_pod;
            let c = (mix(hash ^ 0xc0de) % group as u64) as u32;
            switches.push(topo.agg_switch(pod_s, j));
            switches.push(topo.core_switch(j * group + c));
            switches.push(topo.agg_switch(pod_d, j));
        }
        switches.push(tor_d);
    }

    let mut links = Vec::with_capacity(switches.len() + 1);
    links.push(topo.link_between(src, switches[0]));
    for w in switches.windows(2) {
        links.push(topo.link_between(w[0], w[1]));
    }
    links.push(topo.link_between(*switches.last().unwrap(), dst));
    Route {
        src,
        dst,
        switches,
        links,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::{Tier, TopologyConfig};

    fn quick() -> Topology {
        Topology::build(&TopologyConfig::quick())
    }

    #[test]
    fn same_rack_route_is_two_hops() {
        let t = quick();
        let r = server_route(&t, t.server(0), t.server(1), 7);
        assert_eq!(r.switches.len(), 1);
        assert_eq!(r.links.len(), 2);
        assert_eq!(t.tier(r.switches[0]), Tier::Tor);
    }

    #[test]
    fn same_pod_route_goes_via_aggregation() {
        let t = quick();
        let spr = t.config.servers_per_tor;
        // servers 0 and spr are in racks 0 and 1, both pod 0.
        let r = server_route(&t, t.server(0), t.server(spr), 7);
        assert_eq!(r.switches.len(), 3);
        assert_eq!(t.tier(r.switches[1]), Tier::Aggregation);
        assert_eq!(r.links.len(), 4);
    }

    #[test]
    fn cross_pod_route_goes_via_core() {
        let t = quick();
        let per_pod = t.config.tors_per_pod * t.config.servers_per_tor;
        let r = server_route(&t, t.server(0), t.server(per_pod), 7);
        assert_eq!(r.switches.len(), 5);
        assert_eq!(t.tier(r.switches[2]), Tier::Core);
    }

    #[test]
    fn route_links_are_consecutive() {
        let t = quick();
        let per_pod = t.config.tors_per_pod * t.config.servers_per_tor;
        for hash in 0..16u64 {
            let r = server_route(&t, t.server(1), t.server(per_pod + 3), hash);
            // Each link's dst is the next link's src.
            for w in r.links.windows(2) {
                assert_eq!(t.links[w[0].0 as usize].dst, t.links[w[1].0 as usize].src);
            }
            assert_eq!(t.links[r.links[0].0 as usize].src, r.src);
            assert_eq!(t.links[r.links.last().unwrap().0 as usize].dst, r.dst);
        }
    }

    #[test]
    fn ecmp_spreads_over_paths() {
        let t = quick();
        let per_pod = t.config.tors_per_pod * t.config.servers_per_tor;
        let mut seen = std::collections::HashSet::new();
        for hash in 0..64u64 {
            let r = server_route(&t, t.server(0), t.server(per_pod), hash);
            seen.insert(r.switches[1]);
        }
        assert!(seen.len() > 1, "ECMP should use more than one agg switch");
    }

    #[test]
    fn same_hash_same_route() {
        let t = quick();
        let per_pod = t.config.tors_per_pod * t.config.servers_per_tor;
        let a = server_route(&t, t.server(0), t.server(per_pod), 42);
        let b = server_route(&t, t.server(0), t.server(per_pod), 42);
        assert_eq!(a.switches, b.switches);
        assert_eq!(a.links, b.links);
    }

    #[test]
    fn links_between_switches_slices_correctly() {
        let t = quick();
        let per_pod = t.config.tors_per_pod * t.config.servers_per_tor;
        let r = server_route(&t, t.server(0), t.server(per_pod), 3);
        let all = r.links_between_switches(0, r.switches.len() - 1);
        assert_eq!(all.len(), r.links.len() - 2);
        let none = r.links_between_switches(1, 1);
        assert!(none.is_empty());
    }
}
