//! Property-based tests of simulator invariants: every strategy, over
//! randomised workload parameters, must conserve tree semantics, complete
//! all flows, and respect capacity floors.

use netagg_sim::flow::SegmentKind;
use netagg_sim::metrics::FlowClass;
use netagg_sim::{run_experiment, ExperimentConfig, Strategy as AggStrategy, GBPS};
use proptest::prelude::*;

fn strategies() -> impl Strategy<Value = AggStrategy> {
    prop_oneof![
        Just(netagg_sim::Strategy::Direct),
        Just(netagg_sim::Strategy::RackLevel),
        Just(netagg_sim::Strategy::DAry(1)),
        Just(netagg_sim::Strategy::DAry(2)),
        Just(netagg_sim::Strategy::DAry(4)),
        Just(netagg_sim::Strategy::NetAgg),
    ]
}

fn config(
    strategy: netagg_sim::Strategy,
    seed: u64,
    alpha: f64,
    frac: f64,
    flows: usize,
) -> ExperimentConfig {
    let mut cfg = ExperimentConfig::quick();
    cfg.strategy = strategy;
    cfg.workload.seed = seed;
    cfg.workload.alpha = alpha;
    cfg.workload.frac_aggregatable = frac;
    cfg.workload.num_flows = flows;
    cfg
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every flow completes with a positive FCT no earlier than its start,
    /// under any strategy and workload mix.
    #[test]
    fn all_flows_complete(
        strategy in strategies(),
        seed in 0u64..1_000,
        alpha in 0.02f64..1.0,
        frac in 0.1f64..1.0,
    ) {
        let cfg = config(strategy, seed, alpha, frac, 150);
        let result = run_experiment(&cfg);
        prop_assert!(!result.records.is_empty());
        for r in &result.records {
            prop_assert!(r.finish >= r.start - 1e-12, "finish before start");
            prop_assert!(r.finish <= result.makespan + 1e-9);
            prop_assert!(r.size > 0.0);
        }
        prop_assert!(result.fct_p99(FlowClass::All) > 0.0);
    }

    /// No flow can beat the serialisation floor of a 1 Gbps edge link
    /// (every path includes at least one edge link).
    #[test]
    fn edge_link_is_a_hard_floor(
        strategy in strategies(),
        seed in 0u64..500,
    ) {
        let cfg = config(strategy, seed, 0.1, 0.4, 120);
        let edge = cfg.topology.edge_capacity;
        let result = run_experiment(&cfg);
        for r in &result.records {
            // Background and worker flows traverse their source edge link.
            if r.kind != SegmentKind::AggregatedOutput {
                let floor = r.size / edge;
                prop_assert!(
                    r.fct() >= floor * (1.0 - 1e-6),
                    "fct {} beats serialisation floor {}",
                    r.fct(),
                    floor
                );
            }
        }
    }

    /// Identical configurations yield identical results (determinism).
    #[test]
    fn runs_are_deterministic(
        strategy in strategies(),
        seed in 0u64..200,
    ) {
        let cfg = config(strategy, seed, 0.1, 0.4, 100);
        let a = run_experiment(&cfg);
        let b = run_experiment(&cfg);
        prop_assert_eq!(a.records.len(), b.records.len());
        for (x, y) in a.records.iter().zip(&b.records) {
            prop_assert_eq!(x.finish, y.finish);
            prop_assert_eq!(x.size, y.size);
        }
    }

    /// Derived (aggregated) traffic never exceeds the raw partial-result
    /// traffic it represents, for any alpha <= 1.
    #[test]
    fn aggregation_reduces_bytes(
        strategy in prop_oneof![
            Just(netagg_sim::Strategy::RackLevel),
            Just(netagg_sim::Strategy::DAry(2)),
            Just(netagg_sim::Strategy::NetAgg),
        ],
        seed in 0u64..500,
        alpha in 0.02f64..1.0,
    ) {
        let cfg = config(strategy, seed, alpha, 0.5, 150);
        let flows = {
            let topo = netagg_sim::Topology::build(&cfg.topology);
            let placement = netagg_sim::BoxPlacement::new(&topo, &cfg.deployment);
            let workload = netagg_sim::Workload::generate(&topo, &cfg.workload);
            netagg_sim::aggregation::expand(&topo, &placement, &workload, &cfg)
        };
        // Every partial result appears exactly once as a local_input (at
        // the node that produced it), so the total raw bytes per request
        // is the sum of local inputs.
        let raw: f64 = flows
            .iter()
            .filter(|f| f.is_aggregation_traffic())
            .map(|f| f.local_input)
            .sum();
        for f in &flows {
            if f.kind == SegmentKind::AggregatedOutput {
                // No aggregate exceeds either its own inputs or the raw
                // total of the workload.
                prop_assert!(f.size <= f.total_input(&flows) * (1.0 + 1e-9));
                prop_assert!(f.size <= raw * (1.0 + 1e-9));
            }
        }
    }

    /// Background traffic is byte-identical across strategies (only the
    /// aggregation flows change).
    #[test]
    fn background_population_is_strategy_invariant(seed in 0u64..300) {
        let count = |strategy| {
            let cfg = config(strategy, seed, 0.1, 0.4, 120);
            let r = run_experiment(&cfg);
            let flows: Vec<(u64, u64)> = r
                .records
                .iter()
                .filter(|x| x.kind == SegmentKind::Background)
                .map(|x| (x.size as u64, (x.start * 1e9) as u64))
                .collect();
            flows
        };
        let rack = count(netagg_sim::Strategy::RackLevel);
        let netagg = count(netagg_sim::Strategy::NetAgg);
        prop_assert_eq!(rack, netagg);
    }

    /// Raising a box's processing rate never hurts NetAgg's aggregation
    /// flows (monotonicity of the feasibility sweep, Fig. 2).
    #[test]
    fn box_rate_is_monotone(seed in 0u64..100) {
        let mut slow = config(netagg_sim::Strategy::NetAgg, seed, 0.1, 0.4, 150);
        slow.box_rate = 1.0 * GBPS;
        let mut fast = slow.clone();
        fast.box_rate = 40.0 * GBPS;
        let p99_slow = run_experiment(&slow).fct_p99(FlowClass::Aggregation);
        let p99_fast = run_experiment(&fast).fct_p99(FlowClass::Aggregation);
        prop_assert!(
            p99_fast <= p99_slow * 1.001,
            "faster box made things worse: {p99_fast} vs {p99_slow}"
        );
    }
}

/// Non-proptest sanity check: a fully-aggregatable workload under NetAgg
/// moves strictly fewer link-bytes than under Direct.
#[test]
fn netagg_moves_fewer_link_bytes_than_direct() {
    for seed in [1u64, 7, 42] {
        let total = |strategy| -> f64 {
            let cfg = config(strategy, seed, 0.1, 1.0, 200);
            run_experiment(&cfg).link_bytes.iter().sum()
        };
        let direct = total(AggStrategy::Direct);
        let netagg = total(AggStrategy::NetAgg);
        assert!(
            netagg < direct,
            "seed {seed}: netagg {netagg} >= direct {direct}"
        );
    }
}
