//! Smoke tests of the `simctl` binary.

use std::process::Command;

fn simctl(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_simctl"))
        .args(args)
        .output()
        .expect("simctl runs")
}

#[test]
fn runs_a_quick_experiment() {
    let out = simctl(&[
        "--quick",
        "--strategy",
        "netagg",
        "--flows",
        "200",
        "--seed",
        "7",
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("strategy netagg"));
    assert!(text.contains("percentile"));
    assert!(text.contains("makespan"));
}

#[test]
fn every_strategy_and_deployment_parses() {
    for strategy in ["rack", "binary", "chain", "netagg", "direct"] {
        for deployment in ["all", "incremental", "core", "none"] {
            let out = simctl(&[
                "--quick",
                "--flows",
                "120",
                "--strategy",
                strategy,
                "--deployment",
                deployment,
            ]);
            assert!(
                out.status.success(),
                "{strategy}/{deployment}: {}",
                String::from_utf8_lossy(&out.stderr)
            );
        }
    }
}

#[test]
fn bad_arguments_exit_with_usage() {
    let out = simctl(&["--strategy", "quantum"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage"));
    let out = simctl(&["--no-such-flag"]);
    assert!(!out.status.success());
}

#[test]
fn csv_dump_writes_every_flow() {
    let dir = std::env::temp_dir().join("simctl_csv_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("flows.csv");
    let out = simctl(&[
        "--quick",
        "--flows",
        "150",
        "--seed",
        "3",
        "--csv",
        path.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = std::fs::read_to_string(&path).unwrap();
    let mut lines = text.lines();
    assert_eq!(
        lines.next().unwrap(),
        "kind,request,size_bytes,start_s,finish_s,fct_s"
    );
    let mut rows = 0;
    for line in lines {
        let cols: Vec<&str> = line.split(',').collect();
        assert_eq!(cols.len(), 6, "bad row: {line}");
        let size: f64 = cols[2].parse().unwrap();
        let start: f64 = cols[3].parse().unwrap();
        let finish: f64 = cols[4].parse().unwrap();
        assert!(size > 0.0);
        assert!(finish >= start);
        rows += 1;
    }
    assert!(
        rows >= 150,
        "expected at least the workload flows, got {rows}"
    );
    // The stdout summary reports the same flow count that was dumped.
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains(&format!("wrote {rows} flow records")));
    std::fs::remove_file(&path).ok();
}
