//! Parity suite: the incremental engine must reproduce the reference
//! global solver exactly (within floating-point accumulation order) on
//! small topologies, across strategies, arrival processes and seeds —
//! plus a determinism fence (same seed => byte-identical `SimResult`).

use netagg_sim::{
    run_experiment, ArrivalProcess, EngineKind, ExperimentConfig, Strategy, TopologyConfig,
    WorkloadConfig,
};

/// Relative tolerance on per-flow finish times and makespan. The two
/// engines compute mathematically identical allocations; only FP
/// accumulation order differs.
const REL_TOL: f64 = 1e-6;

fn assert_parity(cfg: &ExperimentConfig, label: &str) {
    let mut inc_cfg = cfg.clone();
    inc_cfg.engine = EngineKind::Incremental;
    let mut ref_cfg = cfg.clone();
    ref_cfg.engine = EngineKind::Reference;
    let inc = run_experiment(&inc_cfg);
    let refr = run_experiment(&ref_cfg);

    assert_eq!(inc.records.len(), refr.records.len(), "{label}: flow count");
    let scale = refr.makespan.max(1e-9);
    for (i, (a, b)) in inc.records.iter().zip(&refr.records).enumerate() {
        assert_eq!(a.size, b.size, "{label}: flow {i} size");
        assert_eq!(a.start, b.start, "{label}: flow {i} start");
        let err = (a.finish - b.finish).abs();
        assert!(
            err <= REL_TOL * scale.max(b.finish.abs()),
            "{label}: flow {i} finish diverged: incremental {} vs reference {} (err {err:e})",
            a.finish,
            b.finish
        );
    }
    let err = (inc.makespan - refr.makespan).abs();
    assert!(
        err <= REL_TOL * scale,
        "{label}: makespan diverged: {} vs {}",
        inc.makespan,
        refr.makespan
    );
    // Link traffic totals are byte counts of the same flows: identical.
    assert_eq!(inc.link_bytes, refr.link_bytes, "{label}: link bytes");
}

/// Seeded, randomized small configuration `k`: topology size, strategy,
/// workload shape and arrival process all vary with the seed.
fn seeded_config(k: u64) -> ExperimentConfig {
    let mut cfg = ExperimentConfig::quick();
    cfg.topology = if k.is_multiple_of(2) {
        TopologyConfig::quick()
    } else {
        // A slightly larger, differently proportioned fabric.
        TopologyConfig {
            pods: 2,
            tors_per_pod: 3,
            servers_per_tor: 6,
            aggs_per_pod: 2,
            cores: 4,
            edge_capacity: netagg_sim::GBPS,
            oversub: 3.0,
        }
    };
    cfg.strategy = match k % 5 {
        0 => Strategy::Direct,
        1 => Strategy::RackLevel,
        2 => Strategy::DAry(1),
        3 => Strategy::DAry(2),
        _ => Strategy::NetAgg,
    };
    cfg.workload = WorkloadConfig {
        num_flows: 80 + (k as usize % 3) * 40,
        seed: 1000 + k,
        // Poisson arrivals on odd seeds exercise mid-run flow additions
        // (the incremental engine's addition restart-level path);
        // stragglers on seeds divisible by 3 add late worker starts.
        arrivals: if k % 2 == 1 {
            ArrivalProcess::Poisson { rate: 2_000.0 }
        } else {
            ArrivalProcess::AllAtOnce
        },
        straggler_frac: if k.is_multiple_of(3) { 0.2 } else { 0.0 },
        straggler_delay: 0.01,
        ..WorkloadConfig::default()
    };
    cfg
}

#[test]
fn incremental_matches_reference_on_seeded_runs() {
    // Acceptance criterion: parity on 10/10 seeded randomized runs.
    for k in 0..10 {
        let cfg = seeded_config(k);
        assert_parity(&cfg, &format!("seed {k} ({:?})", cfg.strategy));
    }
}

#[test]
fn incremental_matches_reference_with_slow_boxes() {
    // Box processing slower than the edge: the box processor becomes the
    // bottleneck resource, exercising non-link resources in the suffix
    // re-solves.
    let mut cfg = ExperimentConfig::quick();
    cfg.strategy = Strategy::NetAgg;
    cfg.box_rate = 0.4 * netagg_sim::GBPS;
    cfg.workload.num_flows = 120;
    assert_parity(&cfg, "slow boxes");
}

/// Serialize every float of a `SimResult` as raw bits: two results encode
/// identically iff they are byte-identical (bit-exact f64s, same counts).
fn result_bits(r: &netagg_sim::SimResult) -> Vec<u64> {
    let mut v = Vec::with_capacity(3 * r.records.len() + r.link_bytes.len() + 1);
    for rec in &r.records {
        v.push(rec.size.to_bits());
        v.push(rec.start.to_bits());
        v.push(rec.finish.to_bits());
    }
    v.extend(r.link_bytes.iter().map(|b| b.to_bits()));
    v.push(r.makespan.to_bits());
    v
}

#[test]
fn same_seed_gives_byte_identical_results() {
    // Determinism fence: the engine iterates only Vecs (never hash maps)
    // in event order, so a repeated run must be bit-exact, not just close.
    for k in [0u64, 1, 4] {
        let cfg = seeded_config(k);
        let a = result_bits(&run_experiment(&cfg));
        let b = result_bits(&run_experiment(&cfg));
        assert_eq!(a, b, "seed {k}: SimResult must be byte-identical");
    }
}

#[test]
fn engine_stats_reflect_the_run() {
    let mut cfg = ExperimentConfig::quick();
    cfg.strategy = Strategy::NetAgg;
    let (res, stats) = netagg_sim::run_experiment_stats(&cfg);
    assert!(res.makespan > 0.0);
    assert_eq!(stats.starts, res.records.len() as u64);
    // Every flow that transferred bytes popped exactly one successful
    // completion event; zero-byte/drained flows complete without one.
    assert!(stats.completions > 0);
    assert!(stats.completions <= stats.starts + stats.spurious_wakeups);
    assert!(stats.resolves > 0);
    assert!(stats.resolved_flows >= stats.resolves);
}
