//! Shape-regression tests: pin the qualitative results of the paper's key
//! figures at the default sweep scale so model changes that break a
//! reproduced claim fail loudly. These run the full fluid engine and are
//! the slowest tests in the crate (~seconds in release, tens of seconds in
//! debug).

use netagg_sim::metrics::{self, FlowClass};
use netagg_sim::{run_experiment, ExperimentConfig, Strategy, GBPS};

fn base() -> ExperimentConfig {
    let mut cfg = ExperimentConfig::default_scale();
    cfg.workload.num_flows = 2_400;
    cfg
}

fn p99(cfg: &ExperimentConfig, class: FlowClass) -> f64 {
    run_experiment(cfg).fct_p99(class)
}

/// Fig. 6's headline at the default load: NetAgg beats every baseline at
/// the 99th percentile of workload flows.
#[test]
fn netagg_wins_the_tail() {
    let mut results = Vec::new();
    for strategy in [
        Strategy::RackLevel,
        Strategy::DAry(2),
        Strategy::DAry(1),
        Strategy::NetAgg,
    ] {
        let mut cfg = base();
        cfg.strategy = strategy;
        results.push((strategy.label(), p99(&cfg, FlowClass::All)));
    }
    let netagg = results.last().unwrap().1;
    for (label, v) in &results[..3] {
        assert!(
            netagg < *v,
            "netagg p99 {netagg} should beat {label} p99 {v}"
        );
    }
    // And the reduction vs rack is substantial (paper: large; ours >= 25%).
    let rack = results[0].1;
    assert!(
        netagg < 0.75 * rack,
        "netagg/rack = {:.3} not a substantial reduction",
        netagg / rack
    );
}

/// Fig. 2's feasibility claim: even a 2 Gbps box beats rack-level
/// aggregation, and faster boxes do not do worse.
#[test]
fn modest_box_rates_suffice() {
    let mut rack = base();
    rack.strategy = Strategy::RackLevel;
    let rack_p99 = p99(&rack, FlowClass::All);
    let mut prev = f64::INFINITY;
    for rate in [2.0, 6.0, 10.0] {
        let mut cfg = base();
        cfg.strategy = Strategy::NetAgg;
        cfg.box_rate = rate * GBPS;
        let v = p99(&cfg, FlowClass::All);
        assert!(v < rack_p99, "R={rate}G: {v} vs rack {rack_p99}");
        assert!(v <= prev * 1.05, "faster box got worse at R={rate}G");
        prev = v;
    }
}

/// Fig. 9's claim: the chain baseline carries much more traffic per link
/// than rack-level; NetAgg carries the least.
#[test]
fn chain_link_traffic_exceeds_rack() {
    let median = |strategy| -> f64 {
        let mut cfg = base();
        cfg.strategy = strategy;
        let lt = metrics::link_traffic_sorted(&run_experiment(&cfg));
        metrics::percentile(&lt, 0.5)
    };
    let rack = median(Strategy::RackLevel);
    let chain = median(Strategy::DAry(1));
    let netagg = median(Strategy::NetAgg);
    assert!(
        chain > 2.0 * rack,
        "chain median {chain} should far exceed rack {rack}"
    );
    assert!(netagg < rack, "netagg {netagg} should undercut rack {rack}");
}

/// Fig. 10's claim: the more aggregatable the traffic, the larger NetAgg's
/// benefit — strictly improving across the sweep.
#[test]
fn benefit_grows_with_aggregatable_fraction() {
    let rel = |frac: f64| -> f64 {
        let mut cfg = base();
        cfg.workload.frac_aggregatable = frac;
        cfg.strategy = Strategy::NetAgg;
        let mut rack = cfg.clone();
        rack.strategy = Strategy::RackLevel;
        p99(&cfg, FlowClass::All) / p99(&rack, FlowClass::All)
    };
    let low = rel(0.2);
    let mid = rel(0.6);
    let high = rel(1.0);
    assert!(mid < low, "{mid} !< {low}");
    assert!(high < mid * 1.1, "{high} !<~ {mid}");
    assert!(
        high < 0.5,
        "fully aggregatable workload should at least halve p99"
    );
}

/// Fig. 7's claim: NetAgg does not hurt (and slightly helps) background
/// traffic, while chain hurts it.
#[test]
fn background_traffic_is_not_harmed() {
    let bg = |strategy| -> f64 {
        let mut cfg = base();
        cfg.strategy = strategy;
        p99(&cfg, FlowClass::Background)
    };
    let rack = bg(Strategy::RackLevel);
    let netagg = bg(Strategy::NetAgg);
    let chain = bg(Strategy::DAry(1));
    assert!(netagg <= rack * 1.05, "netagg bg {netagg} vs rack {rack}");
    assert!(chain >= netagg, "chain bg {chain} vs netagg {netagg}");
}

/// Fig. 3's cost-effectiveness ordering: NetAgg's cost is a small fraction
/// of any fabric upgrade while still improving the tail substantially.
#[test]
fn netagg_is_cost_effective() {
    use netagg_sim::{CostModel, UpgradeOption};
    let prices = CostModel::default();
    let topo = base().topology;
    let netagg_cost = UpgradeOption::NetAgg.upgrade_cost(&topo, &prices);
    let fabric_cost = UpgradeOption::Oversub10G.upgrade_cost(&topo, &prices);
    assert!(netagg_cost < 0.5 * fabric_cost);

    let base_cfg = base();
    let rack_p99 = p99(&UpgradeOption::Base.experiment(&base_cfg), FlowClass::All);
    let netagg_p99 = p99(&UpgradeOption::NetAgg.experiment(&base_cfg), FlowClass::All);
    assert!(netagg_p99 < 0.8 * rack_p99);
}
