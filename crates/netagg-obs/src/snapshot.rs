//! Point-in-time snapshot of a registry, with JSON and text rendering.

use crate::events::Event;
use crate::histogram::HistogramSnapshot;
use std::fmt;

/// A point-in-time copy of every metric in a
/// [`MetricsRegistry`](crate::MetricsRegistry).
///
/// Names are sorted; rendering the same registry state twice yields
/// byte-identical output, which keeps snapshots diffable across runs.
///
/// ```
/// use netagg_obs::MetricsRegistry;
///
/// let obs = MetricsRegistry::new();
/// obs.counter("aggbox.tasks_executed").add(2);
/// obs.histogram("aggbox.task_exec_us").record(100);
///
/// let snap = obs.snapshot();
/// let json = snap.to_json();
/// assert!(json.starts_with('{') && json.ends_with('}'));
/// assert!(json.contains("\"aggbox.tasks_executed\": 2"));
/// assert!(snap.to_text().contains("aggbox.task_exec_us"));
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MetricsSnapshot {
    /// Counter values, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// Gauge values, sorted by name.
    pub gauges: Vec<(String, f64)>,
    /// Histogram summaries, sorted by name.
    pub histograms: Vec<(String, HistogramSnapshot)>,
    /// Total events ever emitted (including ones evicted from the ring).
    pub events_recorded: u64,
    /// The retained events, oldest first.
    pub events: Vec<Event>,
}

impl MetricsSnapshot {
    /// Look up a counter value by exact name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
    }

    /// Look up a gauge value by exact name.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }

    /// Look up a histogram summary by exact name.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, h)| h)
    }

    /// Render as a JSON object.
    ///
    /// The layout is `{"counters": {..}, "gauges": {..}, "histograms":
    /// {name: {count, sum, min, max, p50, p95, p99}, ..},
    /// "events_recorded": N, "events": [{seq, ts_ns, request, kind,
    /// detail}, ..]}` (`request` is `null` for events not tied to one).
    /// Serialization is hand-rolled (the workspace deliberately carries no
    /// JSON dependency); non-finite gauge values render as `null`.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(1024);
        out.push_str("{\n  \"counters\": {");
        for (i, (name, v)) in self.counters.iter().enumerate() {
            push_sep(&mut out, i, "    ");
            out.push_str(&format!("{}: {v}", json_string(name)));
        }
        close_obj(&mut out, self.counters.is_empty(), "  ");
        out.push_str(",\n  \"gauges\": {");
        for (i, (name, v)) in self.gauges.iter().enumerate() {
            push_sep(&mut out, i, "    ");
            out.push_str(&format!("{}: {}", json_string(name), json_f64(*v)));
        }
        close_obj(&mut out, self.gauges.is_empty(), "  ");
        out.push_str(",\n  \"histograms\": {");
        for (i, (name, h)) in self.histograms.iter().enumerate() {
            push_sep(&mut out, i, "    ");
            out.push_str(&format!(
                "{}: {{\"count\": {}, \"sum\": {}, \"min\": {}, \"max\": {}, \
                 \"p50\": {}, \"p95\": {}, \"p99\": {}}}",
                json_string(name),
                h.count,
                h.sum,
                h.min,
                h.max,
                h.p50,
                h.p95,
                h.p99
            ));
        }
        close_obj(&mut out, self.histograms.is_empty(), "  ");
        out.push_str(&format!(
            ",\n  \"events_recorded\": {},\n  \"events\": [",
            self.events_recorded
        ));
        for (i, ev) in self.events.iter().enumerate() {
            push_sep(&mut out, i, "    ");
            let request = ev
                .request
                .map(|r| r.to_string())
                .unwrap_or_else(|| "null".into());
            out.push_str(&format!(
                "{{\"seq\": {}, \"ts_ns\": {}, \"request\": {request}, \
                 \"kind\": {}, \"detail\": {}}}",
                ev.seq,
                ev.timestamp_ns,
                json_string(&ev.kind),
                json_string(&ev.detail)
            ));
        }
        if self.events.is_empty() {
            out.push(']');
        } else {
            out.push_str("\n  ]");
        }
        out.push_str("\n}");
        out
    }

    /// Render as aligned human-readable text (also used by `Display`).
    pub fn to_text(&self) -> String {
        let mut out = String::with_capacity(1024);
        let width = self
            .counters
            .iter()
            .map(|(n, _)| n.len())
            .chain(self.gauges.iter().map(|(n, _)| n.len()))
            .chain(self.histograms.iter().map(|(n, _)| n.len()))
            .max()
            .unwrap_or(0);
        if !self.counters.is_empty() {
            out.push_str("counters:\n");
            for (name, v) in &self.counters {
                out.push_str(&format!("  {name:<width$}  {v}\n"));
            }
        }
        if !self.gauges.is_empty() {
            out.push_str("gauges:\n");
            for (name, v) in &self.gauges {
                out.push_str(&format!("  {name:<width$}  {v:.3}\n"));
            }
        }
        if !self.histograms.is_empty() {
            out.push_str("histograms:\n");
            for (name, h) in &self.histograms {
                out.push_str(&format!(
                    "  {name:<width$}  count {}  mean {:.1}  min {}  max {}  \
                     p50 {}  p95 {}  p99 {}\n",
                    h.count,
                    h.mean(),
                    h.min,
                    h.max,
                    h.p50,
                    h.p95,
                    h.p99
                ));
            }
        }
        out.push_str(&format!("events: {} recorded", self.events_recorded));
        if self.events.len() as u64 != self.events_recorded {
            out.push_str(&format!(", last {} retained", self.events.len()));
        }
        out.push('\n');
        for ev in &self.events {
            let req = ev.request.map(|r| format!(" req {r}")).unwrap_or_default();
            out.push_str(&format!(
                "  [{} @{:.3}ms{req}] {}: {}\n",
                ev.seq,
                ev.timestamp_ns as f64 / 1e6,
                ev.kind,
                ev.detail
            ));
        }
        out
    }
}

impl fmt::Display for MetricsSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_text())
    }
}

fn push_sep(out: &mut String, i: usize, indent: &str) {
    if i > 0 {
        out.push(',');
    }
    out.push('\n');
    out.push_str(indent);
}

fn close_obj(out: &mut String, empty: bool, indent: &str) {
    if empty {
        out.push('}');
    } else {
        out.push('\n');
        out.push_str(indent);
        out.push('}');
    }
}

fn json_f64(v: f64) -> String {
    if v.is_finite() {
        // `{:?}` keeps a decimal point or exponent, so the token is
        // unambiguously a JSON number (e.g. `1.0`, not `1`).
        format!("{v:?}")
    } else {
        "null".to_string()
    }
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MetricsRegistry;

    #[test]
    fn json_escapes_special_characters() {
        assert_eq!(json_string("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(json_string("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn json_numbers_are_valid_tokens() {
        assert_eq!(json_f64(1.0), "1.0");
        assert_eq!(json_f64(-2.5), "-2.5");
        assert_eq!(json_f64(f64::NAN), "null");
        assert_eq!(json_f64(f64::INFINITY), "null");
    }

    #[test]
    fn empty_snapshot_renders_valid_json() {
        let json = MetricsSnapshot::default().to_json();
        assert!(json.contains("\"counters\": {}"));
        assert!(json.contains("\"events\": []"));
    }

    #[test]
    fn populated_snapshot_round_trips_names() {
        let obs = MetricsRegistry::new();
        obs.counter("a.b").add(7);
        obs.gauge("g").set(0.5);
        obs.histogram("h_us").record(123);
        obs.emit("kind", "detail \"quoted\"");
        obs.emit_for_request("repoint", "request-scoped", 42);
        let snap = obs.snapshot();
        let json = snap.to_json();
        assert!(json.contains("\"a.b\": 7"));
        assert!(json.contains("\"g\": 0.5"));
        assert!(json.contains("\"h_us\": {\"count\": 1"));
        assert!(json.contains("\\\"quoted\\\""));
        assert!(json.contains("\"ts_ns\": "));
        assert!(json.contains("\"request\": null"));
        assert!(json.contains("\"request\": 42"));
        let text = snap.to_text();
        assert!(text.contains("a.b"));
        assert!(text.contains("events: 2 recorded"));
        assert!(text.contains("req 42"));
        assert_eq!(format!("{snap}"), text);
    }
}
