//! Causal per-request tracing (DESIGN.md §11).
//!
//! A [`TraceRecorder`] collects [`SpanRecord`]s — named, timed intervals
//! with explicit parent links — from every layer a request touches: the
//! master shim, the agg-box runtime, scheduler task execution and the
//! worker shims. Causality crosses process-internal component boundaries
//! via a [`TraceCtx`] carried in the wire format (see
//! `netagg_core::protocol`): the sender writes its hop-span id into
//! `parent_span_id`, and the receiver's spans attach beneath it, so the
//! exported spans of one request always form a single connected tree
//! rooted at the master's request span.
//!
//! Recording is off by default and costs one relaxed atomic load per
//! would-be span. When enabled, spans are sampled by a hash of the
//! request id ([`TraceRecorder::sampled`]) so soak runs stay bounded, and
//! the buffer itself is capped — overflow increments a drop counter
//! instead of growing without bound.
//!
//! Export formats: Chrome trace-event JSON ([`chrome_trace_json`],
//! loadable in `chrome://tracing` / Perfetto) and a per-request
//! critical-path summary ([`critical_paths`]).

use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

/// Default bound on retained spans per recorder.
const DEFAULT_SPAN_CAPACITY: usize = 65_536;

/// Span ids are counter-assigned with this bit clear; trace ids (which
/// double as root-span ids) have it set, so the two can never collide.
const TRACE_ID_BIT: u64 = 1 << 63;

/// Nanoseconds since the process-wide monotonic anchor.
///
/// Every timestamp in the tracing subsystem — span starts, durations, the
/// `sent_ns` stamp on wire frames — shares this anchor, so intervals
/// recorded by different components of one process line up on a common
/// axis.
pub fn now_ns() -> u64 {
    static ANCHOR: OnceLock<Instant> = OnceLock::new();
    ANCHOR.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

/// The causal context a wire frame carries (DESIGN.md §11).
///
/// `trace_id` identifies the request's trace (0 = tracing off for this
/// frame); `parent_span_id` is the sender's hop-span id, which the
/// receiver uses as the parent of the spans it records for this frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TraceCtx {
    /// Trace the frame belongs to; 0 when tracing is off.
    pub trace_id: u64,
    /// Span id of the sender's hop span (0 = attach to the trace root).
    pub parent_span_id: u64,
}

impl TraceCtx {
    /// The inactive context: all zeros, encoded on every untraced frame.
    pub const NONE: TraceCtx = TraceCtx {
        trace_id: 0,
        parent_span_id: 0,
    };

    /// Whether this context carries a live trace.
    pub fn is_active(&self) -> bool {
        self.trace_id != 0
    }
}

/// Deterministic trace id for `(app, request)` — a splitmix64 finalisation
/// with the high bit forced, so it is nonzero and disjoint from
/// counter-assigned span ids.
///
/// Determinism matters: workers send *before* any downward message could
/// hand them a context, so every component derives the same trace id
/// independently, and the root span id is the trace id by convention.
pub fn trace_id(app: u16, request: u64) -> u64 {
    let mut z = request
        .wrapping_add((app as u64) << 32)
        .wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    (z ^ (z >> 31)) | TRACE_ID_BIT
}

/// One recorded span: a named interval with explicit causal parentage.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Unique id of this span within its recorder.
    pub span_id: u64,
    /// Id of the parent span (0 = this is the trace root).
    pub parent_span_id: u64,
    /// Trace (request) the span belongs to.
    pub trace_id: u64,
    /// Raw request id, for human-facing summaries.
    pub request: u64,
    /// Contract name from [`crate::names::spans`].
    pub name: &'static str,
    /// Component label (rendered as the Chrome trace thread).
    pub component: String,
    /// Start, nanoseconds on the [`now_ns`] axis.
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
}

impl SpanRecord {
    /// End of the span on the [`now_ns`] axis.
    pub fn end_ns(&self) -> u64 {
        self.start_ns.saturating_add(self.dur_ns)
    }
}

/// A lock-light bounded span recorder.
///
/// Shared by every component of a deployment through the
/// [`crate::MetricsRegistry`] (all registry clones see one recorder).
/// Disabled recorders cost a single relaxed load per call.
///
/// ```
/// use netagg_obs::MetricsRegistry;
/// use netagg_obs::names::spans;
/// use netagg_obs::trace;
///
/// let obs = MetricsRegistry::new();
/// let t = obs.tracer();
/// t.enable(1); // sample every request
/// let tid = trace::trace_id(0, 7);
/// if t.sampled(7) {
///     let start = trace::now_ns();
///     let span = t.next_span_id();
///     t.record_span(spans::WORKER_SEND, "worker-0-0", tid, span, tid, 7, start, trace::now_ns());
/// }
/// assert_eq!(t.spans().len(), 1);
/// ```
#[derive(Debug)]
pub struct TraceRecorder {
    enabled: AtomicBool,
    /// Sampling modulus: a request is traced when
    /// `trace_id(0, request) % modulus == 0`. 1 = every request.
    sample_modulus: AtomicU64,
    next_span: AtomicU64,
    dropped: AtomicU64,
    capacity: usize,
    spans: Mutex<Vec<SpanRecord>>,
}

impl Default for TraceRecorder {
    fn default() -> Self {
        Self::with_capacity(DEFAULT_SPAN_CAPACITY)
    }
}

impl TraceRecorder {
    /// A disabled recorder retaining at most `capacity` spans.
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            enabled: AtomicBool::new(false),
            sample_modulus: AtomicU64::new(1),
            next_span: AtomicU64::new(1),
            dropped: AtomicU64::new(0),
            capacity: capacity.max(1),
            spans: Mutex::new(Vec::new()),
        }
    }

    /// Turn recording on, sampling one request in `sample_modulus` (1 =
    /// trace every request).
    pub fn enable(&self, sample_modulus: u64) {
        self.sample_modulus
            .store(sample_modulus.max(1), Ordering::Relaxed);
        self.enabled.store(true, Ordering::Relaxed);
    }

    /// Turn recording off (already-recorded spans are retained).
    pub fn disable(&self) {
        self.enabled.store(false, Ordering::Relaxed);
    }

    /// Whether recording is on. The hot-path guard: one relaxed load.
    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Whether `request` falls in the sample. Deterministic in the request
    /// id, so every component of a deployment makes the same choice.
    pub fn sampled(&self, request: u64) -> bool {
        if !self.enabled() {
            return false;
        }
        let m = self.sample_modulus.load(Ordering::Relaxed);
        m <= 1 || trace_id(0, request).is_multiple_of(m)
    }

    /// Allocate a fresh span id (never collides with a trace id).
    pub fn next_span_id(&self) -> u64 {
        self.next_span.fetch_add(1, Ordering::Relaxed) & !TRACE_ID_BIT
    }

    /// Record one finished span. `end_ns < start_ns` clamps to zero
    /// duration. Silently counts the span as dropped when the buffer is
    /// full.
    #[allow(clippy::too_many_arguments)]
    pub fn record_span(
        &self,
        name: &'static str,
        component: &str,
        trace_id: u64,
        span_id: u64,
        parent_span_id: u64,
        request: u64,
        start_ns: u64,
        end_ns: u64,
    ) {
        if !self.enabled() {
            return;
        }
        let rec = SpanRecord {
            span_id,
            parent_span_id,
            trace_id,
            request,
            name,
            component: component.to_string(),
            start_ns,
            dur_ns: end_ns.saturating_sub(start_ns),
        };
        let mut spans = self.spans.lock();
        if spans.len() >= self.capacity {
            drop(spans);
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        spans.push(rec);
    }

    /// Copy of every retained span, in recording order.
    pub fn spans(&self) -> Vec<SpanRecord> {
        self.spans.lock().clone()
    }

    /// Number of retained spans.
    pub fn len(&self) -> usize {
        self.spans.lock().len()
    }

    /// Whether no spans are retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Spans discarded because the buffer was full.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Maximum retained spans.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

// ---------------------------------------------------------------------------
// Export: Chrome trace-event JSON
// ---------------------------------------------------------------------------

fn json_escape(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
}

/// Render spans as Chrome trace-event JSON (the "JSON array format"):
/// one complete (`"ph": "X"`) event per span plus `thread_name` metadata
/// mapping each component label onto a stable tid. Timestamps are
/// microseconds with nanosecond precision; load the output in
/// `chrome://tracing` or Perfetto.
pub fn chrome_trace_json(spans: &[SpanRecord]) -> String {
    // Stable tid per component label, in first-seen order.
    let mut components: Vec<String> = Vec::new();
    for s in spans {
        if !components.contains(&s.component) {
            components.push(s.component.clone());
        }
    }
    let tid_of = |c: &str| components.iter().position(|x| x == c).map_or(0, |i| i + 1);
    let mut out = String::with_capacity(spans.len() * 160 + 64);
    out.push_str("[\n");
    let mut first = true;
    let push_event = |out: &mut String, first: &mut bool, body: &str| {
        if !*first {
            out.push_str(",\n");
        }
        *first = false;
        out.push_str(body);
    };
    for (i, c) in components.iter().enumerate() {
        let mut name = String::new();
        json_escape(&mut name, c);
        push_event(
            &mut out,
            &mut first,
            &format!(
                "{{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 1, \
                 \"tid\": {}, \"args\": {{\"name\": \"{name}\"}}}}",
                i + 1
            ),
        );
    }
    for s in spans {
        let tid = tid_of(&s.component);
        let ts = s.start_ns as f64 / 1_000.0;
        let dur = s.dur_ns as f64 / 1_000.0;
        push_event(
            &mut out,
            &mut first,
            &format!(
                "{{\"name\": \"{}\", \"cat\": \"netagg\", \"ph\": \"X\", \
                 \"ts\": {ts:.3}, \"dur\": {dur:.3}, \"pid\": 1, \"tid\": {tid}, \
                 \"args\": {{\"trace\": \"{:#x}\", \"span\": \"{:#x}\", \
                 \"parent\": \"{:#x}\", \"request\": {}}}}}",
                s.name, s.trace_id, s.span_id, s.parent_span_id, s.request
            ),
        );
    }
    out.push_str("\n]\n");
    out
}

// ---------------------------------------------------------------------------
// Export: per-request critical path
// ---------------------------------------------------------------------------

/// One hop of a request's critical path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CriticalHop {
    /// Span name of the hop.
    pub name: &'static str,
    /// Component that recorded the hop.
    pub component: String,
    /// Duration of the hop in nanoseconds.
    pub dur_ns: u64,
}

/// The critical path of one traced request: the root-to-leaf chain whose
/// completion determined the request's end time, with per-stage
/// attribution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CriticalPath {
    /// Request the path belongs to.
    pub request: u64,
    /// Trace id of the request.
    pub trace_id: u64,
    /// Total spanned time (root start → latest end) in nanoseconds.
    pub total_ns: u64,
    /// Hops from the root down to the latest-finishing leaf.
    pub hops: Vec<CriticalHop>,
}

impl CriticalPath {
    /// Render the path as a one-request plain-text summary.
    pub fn to_text(&self) -> String {
        let mut out = format!(
            "request {} ({:#x}): {:.3} ms critical path\n",
            self.request,
            self.trace_id,
            self.total_ns as f64 / 1e6
        );
        for h in &self.hops {
            out.push_str(&format!(
                "  {:<24} {:>10.3} ms  [{}]\n",
                h.name,
                h.dur_ns as f64 / 1e6,
                h.component
            ));
        }
        out
    }
}

/// Compute the per-request critical paths of a span set: for each trace,
/// walk from the root span towards the child subtree with the latest end
/// time — the chain that gated completion. Requests whose root span is
/// missing (sampled out mid-flight, dropped on overflow) are skipped.
pub fn critical_paths(spans: &[SpanRecord]) -> Vec<CriticalPath> {
    use std::collections::BTreeMap;
    let mut by_trace: BTreeMap<u64, Vec<&SpanRecord>> = BTreeMap::new();
    for s in spans {
        by_trace.entry(s.trace_id).or_default().push(s);
    }
    let mut out = Vec::new();
    for (tid, spans) in by_trace {
        let Some(root) = spans.iter().find(|s| s.span_id == tid) else {
            continue;
        };
        // Latest end over the whole trace: the request's effective finish.
        let finish = spans.iter().map(|s| s.end_ns()).max().unwrap_or(0);
        let mut children: BTreeMap<u64, Vec<&SpanRecord>> = BTreeMap::new();
        for &s in &spans {
            if s.span_id != tid {
                children.entry(s.parent_span_id).or_default().push(s);
            }
        }
        let mut hops = vec![CriticalHop {
            name: root.name,
            component: root.component.clone(),
            dur_ns: root.dur_ns,
        }];
        let mut cur = root.span_id;
        let mut guard = 0usize;
        while let Some(kids) = children.get(&cur) {
            guard += 1;
            if guard > spans.len() {
                break; // defensive: malformed parent links
            }
            let Some(next) = kids.iter().max_by_key(|s| s.end_ns()) else {
                break;
            };
            hops.push(CriticalHop {
                name: next.name,
                component: next.component.clone(),
                dur_ns: next.dur_ns,
            });
            cur = next.span_id;
        }
        out.push(CriticalPath {
            request: root.request,
            trace_id: tid,
            total_ns: finish.saturating_sub(root.start_ns),
            hops,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::names::spans;

    fn rec() -> TraceRecorder {
        let t = TraceRecorder::with_capacity(16);
        t.enable(1);
        t
    }

    #[test]
    fn disabled_recorder_records_nothing() {
        let t = TraceRecorder::default();
        assert!(!t.enabled());
        assert!(!t.sampled(1));
        t.record_span(spans::WORKER_SEND, "w", 1, 2, 3, 4, 0, 10);
        assert!(t.is_empty());
    }

    #[test]
    fn trace_ids_are_nonzero_and_disjoint_from_span_ids() {
        let t = rec();
        for r in 0..1000u64 {
            let tid = trace_id(3, r);
            assert!(tid & TRACE_ID_BIT != 0);
            assert_ne!(tid, 0);
        }
        for _ in 0..1000 {
            assert_eq!(t.next_span_id() & TRACE_ID_BIT, 0);
        }
    }

    #[test]
    fn capacity_bound_counts_drops() {
        let t = rec();
        for i in 0..40u64 {
            t.record_span(spans::BOX_COMBINE, "b", 1, i + 1, 1, 7, 0, 5);
        }
        assert_eq!(t.len(), 16);
        assert_eq!(t.dropped(), 24);
    }

    #[test]
    fn sampling_is_deterministic_and_sparse() {
        let t = TraceRecorder::default();
        t.enable(16);
        let hits: Vec<u64> = (0..10_000).filter(|&r| t.sampled(r)).collect();
        // Deterministic: same set on a second pass.
        let again: Vec<u64> = (0..10_000).filter(|&r| t.sampled(r)).collect();
        assert_eq!(hits, again);
        // Roughly 1/16 of requests, with generous slack.
        assert!(
            hits.len() > 300 && hits.len() < 1000,
            "1/16 sampling hit {} of 10000",
            hits.len()
        );
    }

    #[test]
    fn chrome_export_is_wellformed_and_names_threads() {
        let t = rec();
        let tid = trace_id(0, 9);
        t.record_span(spans::MASTER_REQUEST, "master-0", tid, tid, 0, 9, 100, 900);
        t.record_span(spans::WORKER_SEND, "worker-0-1", tid, 1, tid, 9, 150, 300);
        let json = chrome_trace_json(&t.spans());
        assert!(json.starts_with("[\n"));
        assert!(json.trim_end().ends_with(']'));
        assert!(json.contains("\"thread_name\""));
        assert!(json.contains("\"master-0\""));
        assert!(json.contains(spans::MASTER_REQUEST));
        assert!(json.contains("\"ph\": \"X\""));
        // Two metadata events + two spans = four objects.
        assert_eq!(json.matches("\"ph\"").count(), 4);
    }

    #[test]
    fn critical_path_follows_latest_child() {
        let t = rec();
        let tid = trace_id(0, 5);
        // root 0..1000; fast child 10..100; slow child 10..950 with a
        // grandchild 800..950.
        t.record_span(spans::MASTER_REQUEST, "m", tid, tid, 0, 5, 0, 1000);
        t.record_span(spans::BOX_RECV, "b", tid, 1, tid, 5, 10, 100);
        t.record_span(spans::BOX_REQUEST, "b", tid, 2, tid, 5, 10, 950);
        t.record_span(spans::BOX_COMBINE, "b-sched", tid, 3, 2, 5, 800, 950);
        let paths = critical_paths(&t.spans());
        assert_eq!(paths.len(), 1);
        let p = &paths[0];
        assert_eq!(p.total_ns, 1000);
        let names: Vec<&str> = p.hops.iter().map(|h| h.name).collect();
        assert_eq!(
            names,
            vec![
                spans::MASTER_REQUEST,
                spans::BOX_REQUEST,
                spans::BOX_COMBINE
            ]
        );
        assert!(p.to_text().contains("request 5"));
    }

    #[test]
    fn now_ns_is_monotone() {
        let a = now_ns();
        let b = now_ns();
        assert!(b >= a);
    }
}
