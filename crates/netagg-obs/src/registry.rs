//! The metrics registry and its atomic counter/gauge handles.

use crate::events::{Event, EventRing};
use crate::histogram::Histogram;
use crate::snapshot::MetricsSnapshot;
use crate::trace::TraceRecorder;
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Default capacity of the structured-event ring.
const DEFAULT_EVENT_CAPACITY: usize = 1024;

/// A monotonically increasing atomic counter.
///
/// ```
/// use netagg_obs::Counter;
///
/// let c = Counter::new();
/// c.inc();
/// c.add(4);
/// assert_eq!(c.get(), 5);
/// ```
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Create a counter at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Increment by one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Increment by `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-value-wins gauge holding an `f64`.
///
/// The value is stored as its bit pattern in an `AtomicU64`, so reads and
/// writes are lock-free and never torn.
///
/// ```
/// use netagg_obs::Gauge;
///
/// let g = Gauge::new();
/// g.set(2.5);
/// assert_eq!(g.get(), 2.5);
/// ```
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// Create a gauge at 0.0.
    pub fn new() -> Self {
        Self(AtomicU64::new(0f64.to_bits()))
    }

    /// Set the current value.
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Read the current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }

    /// Add `delta` (may be negative) atomically — for gauges maintained as
    /// shared up/down counters, e.g. `runtime.threads_active`.
    pub fn add(&self, delta: f64) {
        let mut cur = self.0.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + delta).to_bits();
            match self
                .0
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }
}

#[derive(Debug)]
struct Inner {
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    gauges: Mutex<BTreeMap<String, Arc<Gauge>>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
    events: EventRing,
    tracer: Arc<TraceRecorder>,
}

/// A thread-safe registry of named metrics.
///
/// Cloning a registry is cheap (an `Arc` bump) and all clones share the
/// same metrics, so one registry threaded through a deployment merges the
/// activity of every box, shim and transport into a single namespace.
/// Looking a metric up by name takes a short mutex; the returned handle is
/// lock-free, so hot paths fetch their handles once and update atomics
/// thereafter.
///
/// ```
/// use netagg_obs::MetricsRegistry;
///
/// let obs = MetricsRegistry::new();
/// let a = obs.counter("net.frames_sent");
/// let b = obs.clone().counter("net.frames_sent"); // same underlying atomic
/// a.inc();
/// b.inc();
/// assert_eq!(obs.snapshot().counter("net.frames_sent"), Some(2));
/// ```
#[derive(Debug, Clone)]
pub struct MetricsRegistry {
    inner: Arc<Inner>,
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        Self::new()
    }
}

impl MetricsRegistry {
    /// Create an empty registry with the default event-ring capacity.
    pub fn new() -> Self {
        Self::with_event_capacity(DEFAULT_EVENT_CAPACITY)
    }

    /// Create an empty registry retaining at most `capacity` events.
    pub fn with_event_capacity(capacity: usize) -> Self {
        Self {
            inner: Arc::new(Inner {
                counters: Mutex::new(BTreeMap::new()),
                gauges: Mutex::new(BTreeMap::new()),
                histograms: Mutex::new(BTreeMap::new()),
                events: EventRing::new(capacity),
                tracer: Arc::new(TraceRecorder::default()),
            }),
        }
    }

    /// The registry's span recorder (DESIGN.md §11). Shared by every
    /// clone of the registry; disabled (and effectively free) until
    /// [`TraceRecorder::enable`] is called.
    pub fn tracer(&self) -> Arc<TraceRecorder> {
        self.inner.tracer.clone()
    }

    /// Get or create the counter named `name`.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        get_or_create(&self.inner.counters, name)
    }

    /// Get or create the gauge named `name`.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        get_or_create(&self.inner.gauges, name)
    }

    /// Get or create the histogram named `name`.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        get_or_create(&self.inner.histograms, name)
    }

    /// Append a structured event to the bounded ring.
    pub fn emit(&self, kind: &str, detail: impl Into<String>) {
        self.inner.events.emit(kind, detail);
    }

    /// Append a structured event tied to one request.
    pub fn emit_for_request(&self, kind: &str, detail: impl Into<String>, request: u64) {
        self.inner.events.emit_for_request(kind, detail, request);
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> Vec<Event> {
        self.inner.events.events()
    }

    /// Total events ever emitted, including ones evicted from the ring.
    pub fn events_recorded(&self) -> u64 {
        self.inner.events.total_recorded()
    }

    /// Take a point-in-time [`MetricsSnapshot`] of every registered metric.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self
                .inner
                .counters
                .lock()
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            gauges: self
                .inner
                .gauges
                .lock()
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            histograms: self
                .inner
                .histograms
                .lock()
                .iter()
                .map(|(k, v)| (k.clone(), v.snapshot()))
                .collect(),
            events_recorded: self.events_recorded(),
            events: self.events(),
        }
    }
}

fn get_or_create<T: Default>(map: &Mutex<BTreeMap<String, Arc<T>>>, name: &str) -> Arc<T> {
    let mut map = map.lock();
    if let Some(v) = map.get(name) {
        return v.clone();
    }
    let v = Arc::new(T::default());
    map.insert(name.to_string(), v.clone());
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_name_returns_same_handle() {
        let obs = MetricsRegistry::new();
        let a = obs.counter("x");
        let b = obs.counter("x");
        a.inc();
        assert_eq!(b.get(), 1);
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn clones_share_state() {
        let obs = MetricsRegistry::new();
        let clone = obs.clone();
        obs.counter("c").add(3);
        clone.gauge("g").set(-1.5);
        clone.histogram("h").record(10);
        let snap = obs.snapshot();
        assert_eq!(snap.counter("c"), Some(3));
        assert_eq!(snap.gauge("g"), Some(-1.5));
        assert_eq!(snap.histogram("h").unwrap().count, 1);
    }

    #[test]
    fn clones_share_the_tracer() {
        let obs = MetricsRegistry::new();
        obs.tracer().enable(1);
        let clone = obs.clone();
        assert!(clone.tracer().enabled());
        assert!(Arc::ptr_eq(&obs.tracer(), &clone.tracer()));
    }

    #[test]
    fn snapshot_names_are_sorted() {
        let obs = MetricsRegistry::new();
        obs.counter("zeta").inc();
        obs.counter("alpha").inc();
        let snap = obs.snapshot();
        let names: Vec<&str> = snap.counters.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["alpha", "zeta"]);
    }
}
