//! The single source of truth for every metric and event name in the
//! DESIGN.md §7 contract.
//!
//! Every runtime layer resolves its handles through these constants (or
//! the template helpers below) instead of scattering string literals, so
//! a rename is one edit here plus the matching row in DESIGN.md §7 —
//! `netagg-lint`'s `metrics-contract` rule diffs the two bidirectionally
//! and fails CI on any drift, including a deleted table row or a renamed
//! constant.
//!
//! Templated names keep their `<placeholder>` segments verbatim in the
//! constant (e.g. [`MAILBOX_DEPTH`] is `"mailbox.depth.<name>"`), exactly
//! as the §7 table spells them; the helper functions substitute concrete
//! values at runtime via [`expand`].

use std::fmt::Display;

// --- agg box: scheduler ----------------------------------------------------

/// Tasks run to completion by the scheduler's worker pool.
pub const AGGBOX_TASKS_EXECUTED: &str = "aggbox.tasks_executed";
/// Tasks whose closure panicked (caught by the worker loop).
pub const AGGBOX_TASKS_PANICKED: &str = "aggbox.tasks_panicked";
/// Tasks drained unrun at scheduler shutdown.
pub const AGGBOX_TASKS_DROPPED: &str = "aggbox.tasks_dropped";
/// Per-task execution latency histogram (µs).
pub const AGGBOX_TASK_EXEC_US: &str = "aggbox.task_exec_us";
/// Queued tasks across all applications.
pub const AGGBOX_QUEUE_DEPTH: &str = "aggbox.queue_depth";
/// Effective WFQ weight per application (template: `<N>` = app id).
pub const AGGBOX_WFQ_WEIGHT: &str = "aggbox.wfq_weight.app<N>";

// --- agg box: data path ----------------------------------------------------

/// Data messages into the agg-box runtime.
pub const AGGBOX_MESSAGES_IN: &str = "aggbox.messages_in";
/// Payload bytes into the agg-box runtime.
pub const AGGBOX_BYTES_IN: &str = "aggbox.bytes_in";
/// Requests whose final aggregate was emitted.
pub const AGGBOX_REQUESTS_COMPLETED: &str = "aggbox.requests_completed";
/// First data byte in → final aggregate out, per request (µs).
pub const AGGBOX_REQUEST_AGG_US: &str = "aggbox.request_agg_us";
/// Chunks suppressed by per-source sequence tracking.
pub const AGGBOX_DUPLICATES_DROPPED: &str = "aggbox.duplicates_dropped";
/// Failed upstream sends from the egress loop.
pub const AGGBOX_SEND_ERRORS: &str = "aggbox.send_errors";
/// A parent box adopting a failed child box's subtree.
pub const AGGBOX_REPOINTS: &str = "aggbox.repoints";

// --- straggler handling ----------------------------------------------------

/// Child box bypassed by a box's straggler loop.
pub const STRAGGLER_REDIRECTS: &str = "straggler.redirects";
/// Repeat-limit escalations to permanent failure.
pub const STRAGGLER_ESCALATIONS: &str = "straggler.escalations";
/// Root box bypassed by the master shim's straggler loop.
pub const STRAGGLER_MASTER_BYPASSES: &str = "straggler.master_bypasses";

// --- master shim -----------------------------------------------------------

/// Requests registered (`register_request[_subset]`).
pub const SHIM_MASTER_REQUESTS_REGISTERED: &str = "shim.master.requests_registered";
/// Results delivered to the application.
pub const SHIM_MASTER_REQUESTS_COMPLETED: &str = "shim.master.requests_completed";
/// Messages into the master shim reader loop.
pub const SHIM_MASTER_MESSAGES_IN: &str = "shim.master.messages_in";
/// Payload bytes into the master shim reader loop.
pub const SHIM_MASTER_BYTES_IN: &str = "shim.master.bytes_in";
/// Empty per-worker results synthesised per request.
pub const SHIM_MASTER_EMULATED_EMPTIES: &str = "shim.master.emulated_empties";
/// Register → result available, per request (µs).
pub const SHIM_MASTER_REQUEST_WAIT_US: &str = "shim.master.request_wait_us";
/// Chunks suppressed by the fan-in ledger (§8).
pub const SHIM_MASTER_DUPLICATES_DROPPED: &str = "shim.master.duplicates_dropped";
/// Failed-box re-points applied by the master shim.
pub const SHIM_MASTER_REPOINTS: &str = "shim.master.repoints";
/// Non-complete entries in the pending table.
pub const SHIM_MASTER_REQUESTS_INFLIGHT: &str = "shim.master.requests_inflight";
/// Sum of ledger entries still owed across in-flight requests (§8).
pub const SHIM_MASTER_SOURCES_OUTSTANDING: &str = "shim.master.sources_outstanding";

// --- worker shim -----------------------------------------------------------

/// Data chunks sent via `send_partial`.
pub const SHIM_WORKER_CHUNKS_SENT: &str = "shim.worker.chunks_sent";
/// Payload bytes sent via `send_partial`.
pub const SHIM_WORKER_BYTES_SENT: &str = "shim.worker.bytes_sent";
/// Chunks replayed after a re-point.
pub const SHIM_WORKER_CHUNKS_RESENT: &str = "shim.worker.chunks_resent";
/// Redirect commands accepted by the control loop.
pub const SHIM_WORKER_REDIRECTS_APPLIED: &str = "shim.worker.redirects_applied";

// --- lifecycle (§9) --------------------------------------------------------

/// Live threads across every `JoinScope` in a deployment; 0 after teardown.
pub const RUNTIME_THREADS_ACTIVE: &str = "runtime.threads_active";
/// Queued items per named mailbox (template: `<name>` = §9 mailbox name).
pub const MAILBOX_DEPTH: &str = "mailbox.depth.<name>";
/// Items evicted or refused per named mailbox (template).
pub const MAILBOX_DROPPED: &str = "mailbox.dropped.<name>";
/// The same drops aggregated by overflow-policy label (template:
/// `<policy>` = `drop_oldest` | `reject`).
pub const MAILBOX_DROPPED_POLICY: &str = "mailbox.dropped.<policy>";

// --- failure detection -----------------------------------------------------

/// Boxes declared failed by a detector.
pub const FAILURE_DETECTIONS: &str = "failure.detections";
/// Grandchildren re-pointed around a dead box.
pub const FAILURE_REPOINTS: &str = "failure.repoints";

// --- metered transport -----------------------------------------------------

/// Frames through any metered send.
pub const NET_FRAMES_SENT: &str = "net.frames_sent";
/// Payload bytes through any metered send.
pub const NET_BYTES_SENT: &str = "net.bytes_sent";
/// Frames through any metered receive.
pub const NET_FRAMES_RECV: &str = "net.frames_recv";
/// Payload bytes through any metered receive.
pub const NET_BYTES_RECV: &str = "net.bytes_recv";
/// Frames per directed link (template: `<from>`, `<to>` = node ids).
pub const NET_LINK_FRAMES: &str = "net.link.<from>-><to>.frames";
/// Payload bytes per directed link (template).
pub const NET_LINK_BYTES: &str = "net.link.<from>-><to>.bytes";

// --- tcp reactor (§12) -----------------------------------------------------

/// Reactor shard wakeups out of a park (kick, registration or tick).
pub const NET_TCP_REACTOR_WAKEUPS: &str = "net.tcp.reactor_wakeups";
/// Socket write syscalls issued by the reactor; each may carry many
/// coalesced mux records, so `frames_sent / batches_written` is the
/// effective batching factor.
pub const NET_TCP_BATCHES_WRITTEN: &str = "net.tcp.batches_written";
/// Mux records written in a batch that carried at least one other record.
pub const NET_TCP_FRAMES_COALESCED: &str = "net.tcp.frames_coalesced";
/// Physical links (multiplexed sockets) currently registered.
pub const NET_TCP_LINKS_ACTIVE: &str = "net.tcp.links_active";
/// Virtual connections (mux channels) currently open.
pub const NET_TCP_CHANNELS_ACTIVE: &str = "net.tcp.channels_active";

// --- simulator -------------------------------------------------------------

/// Flows completed by a simulation run.
pub const SIM_FLOWS_COMPLETED: &str = "sim.flows_completed";
/// Requests completed by a simulation run.
pub const SIM_REQUESTS_COMPLETED: &str = "sim.requests_completed";
/// Bytes delivered by a simulation run.
pub const SIM_BYTES_DELIVERED: &str = "sim.bytes_delivered";
/// Per-flow completion time (µs).
pub const SIM_FCT_US: &str = "sim.fct_us";
/// Per-request span, first start → last finish (µs).
pub const SIM_REQUEST_COMPLETION_US: &str = "sim.request_completion_us";

// --- structured event kinds ------------------------------------------------

/// A detector declared a box failed.
pub const EVENT_FAILURE: &str = "failure";
/// A box or master shim bypassed a straggling child box.
pub const EVENT_STRAGGLER: &str = "straggler";
/// Behind-sources of a failed box moved into direct fan-in entries (§8).
pub const EVENT_REPOINT: &str = "repoint";
/// An ordered lock's guard was dropped during a panic unwind (§15).
pub const EVENT_LOCK_POISON: &str = "lock_poison";

/// The span and stage names of the DESIGN.md §11 tracing contract.
///
/// Like the metric names above, every [`crate::trace::TraceRecorder`]
/// call site spells its span name through these constants; `netagg-lint`
/// diffs this module against the §11 "Span and stage names" table
/// bidirectionally.
pub mod spans {
    /// Master root span: request registered → result delivered.
    pub const MASTER_REQUEST: &str = "span.master.request";
    /// Master shim processing one arriving data frame.
    pub const MASTER_RECV: &str = "span.master.recv";
    /// Master shim re-pointing one in-flight request around a dead box.
    pub const MASTER_REPOINT: &str = "span.master.repoint";
    /// Box-side span of one request: first data in → final aggregate out.
    pub const BOX_REQUEST: &str = "span.box.request";
    /// Box runtime processing one arriving data frame.
    pub const BOX_RECV: &str = "span.box.recv";
    /// Scheduler queue wait: combine submitted → combine started.
    pub const BOX_QUEUE_WAIT: &str = "span.box.queue_wait";
    /// One combine executed by a scheduler task.
    pub const BOX_COMBINE: &str = "span.box.combine";
    /// Box building + enqueueing an upward result frame.
    pub const BOX_FORWARD: &str = "span.box.forward";
    /// Box adopting a failed child box's subtree for one request.
    pub const BOX_REPOINT: &str = "span.box.repoint";
    /// Worker shim serialising + sending one partial.
    pub const WORKER_SEND: &str = "span.worker.send";
    /// Worker shim replaying buffered chunks after a re-point.
    pub const WORKER_RESEND: &str = "span.worker.resend";
    /// Frame in flight: sender stamp → receiver decode.
    pub const WIRE_TRANSFER: &str = "span.wire.transfer";
    /// Simulator: one flow of a simulated request.
    pub const SIM_FLOW: &str = "span.sim.flow";
    /// Simulator: whole-request envelope (first start → last finish).
    pub const SIM_REQUEST: &str = "span.sim.request";
}

/// Substitute the `<placeholder>` segments of a template name, in order,
/// with `args` (which must match the placeholder count exactly).
///
/// ```
/// use netagg_obs::names;
/// assert_eq!(
///     names::expand(names::MAILBOX_DEPTH, &["egress"]),
///     "mailbox.depth.egress"
/// );
/// ```
///
/// # Panics
///
/// Panics when `args` has fewer or more entries than the template has
/// placeholders — a template misuse, not a runtime condition.
pub fn expand(template: &str, args: &[&str]) -> String {
    let mut out = String::with_capacity(template.len());
    let mut rest = template;
    let mut used = 0;
    while let Some(open) = rest.find('<') {
        let close = rest[open..]
            .find('>')
            .map(|i| open + i)
            .expect("unterminated template placeholder");
        out.push_str(&rest[..open]);
        out.push_str(args.get(used).expect("too few template args"));
        used += 1;
        rest = &rest[close + 1..];
    }
    assert_eq!(used, args.len(), "too many template args");
    out.push_str(rest);
    out
}

/// Concrete `aggbox.wfq_weight.app<N>` name for one application.
pub fn wfq_weight(app: impl Display) -> String {
    expand(AGGBOX_WFQ_WEIGHT, &[&app.to_string()])
}

/// Concrete `mailbox.depth.<name>` name for one mailbox.
pub fn mailbox_depth(name: &str) -> String {
    expand(MAILBOX_DEPTH, &[name])
}

/// Concrete `mailbox.dropped.<name>` name for one mailbox.
pub fn mailbox_dropped(name: &str) -> String {
    expand(MAILBOX_DROPPED, &[name])
}

/// Concrete `mailbox.dropped.<policy>` name for one overflow-policy label.
pub fn mailbox_dropped_policy(label: &str) -> String {
    expand(MAILBOX_DROPPED_POLICY, &[label])
}

/// Concrete `net.link.<from>-><to>.frames` name for one directed link.
pub fn net_link_frames(from: impl Display, to: impl Display) -> String {
    expand(NET_LINK_FRAMES, &[&from.to_string(), &to.to_string()])
}

/// Concrete `net.link.<from>-><to>.bytes` name for one directed link.
pub fn net_link_bytes(from: impl Display, to: impl Display) -> String {
    expand(NET_LINK_BYTES, &[&from.to_string(), &to.to_string()])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expand_substitutes_in_order() {
        assert_eq!(net_link_frames(3, 9), "net.link.3->9.frames");
        assert_eq!(net_link_bytes("a", "b"), "net.link.a->b.bytes");
        assert_eq!(wfq_weight(4), "aggbox.wfq_weight.app4");
        assert_eq!(mailbox_depth("egress"), "mailbox.depth.egress");
        assert_eq!(mailbox_dropped("egress"), "mailbox.dropped.egress");
        assert_eq!(mailbox_dropped_policy("reject"), "mailbox.dropped.reject");
    }

    #[test]
    fn expand_passes_plain_names_through() {
        assert_eq!(expand(AGGBOX_TASKS_EXECUTED, &[]), AGGBOX_TASKS_EXECUTED);
    }

    #[test]
    #[should_panic(expected = "too few template args")]
    fn expand_rejects_missing_args() {
        expand(MAILBOX_DEPTH, &[]);
    }

    #[test]
    #[should_panic(expected = "too many template args")]
    fn expand_rejects_extra_args() {
        expand(AGGBOX_TASKS_EXECUTED, &["spare"]);
    }
}
