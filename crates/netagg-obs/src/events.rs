//! Bounded ring buffer of structured runtime events.

use parking_lot::Mutex;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};

/// One structured runtime event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    /// Monotonic sequence number, 1-based, assigned at emission. Gaps in a
    /// drained snapshot indicate events evicted by the bounded ring.
    pub seq: u64,
    /// Emission time on the [`crate::trace::now_ns`] monotonic axis, so
    /// events correlate with recorded spans.
    pub timestamp_ns: u64,
    /// Request the event concerns, when it concerns exactly one.
    pub request: Option<u64>,
    /// Event category, e.g. `"failure"` or `"straggler"`.
    pub kind: String,
    /// Free-form human-readable detail.
    pub detail: String,
}

/// A bounded, drop-oldest ring of [`Event`]s.
///
/// Rare but high-signal occurrences (a box declared failed, a straggler
/// bypass escalated to a permanent re-route) carry context a counter
/// cannot: *which* box, *which* request. The ring keeps the most recent
/// `capacity` of them; older ones are evicted but remain reflected in
/// [`EventRing::total_recorded`].
///
/// ```
/// use netagg_obs::EventRing;
///
/// let ring = EventRing::new(2);
/// ring.emit("failure", "box 0 declared failed");
/// ring.emit("failure", "box 1 declared failed");
/// ring.emit("straggler", "request 7 re-pointed");
///
/// let events = ring.events();
/// assert_eq!(events.len(), 2); // oldest evicted
/// assert_eq!(events[0].seq, 2);
/// assert_eq!(ring.total_recorded(), 3);
/// ```
#[derive(Debug)]
pub struct EventRing {
    capacity: usize,
    total: AtomicU64,
    ring: Mutex<VecDeque<Event>>,
}

impl EventRing {
    /// Create a ring holding at most `capacity` events (min 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Self {
            capacity,
            total: AtomicU64::new(0),
            ring: Mutex::new(VecDeque::with_capacity(capacity)),
        }
    }

    /// Append an event, evicting the oldest if the ring is full. The
    /// event is stamped with [`crate::trace::now_ns`] and carries no
    /// request id; use [`EventRing::emit_for_request`] when the event
    /// concerns exactly one request.
    pub fn emit(&self, kind: &str, detail: impl Into<String>) {
        self.push(kind, detail.into(), None);
    }

    /// Append an event tied to one request (correlates the ring with the
    /// request's trace spans).
    pub fn emit_for_request(&self, kind: &str, detail: impl Into<String>, request: u64) {
        self.push(kind, detail.into(), Some(request));
    }

    fn push(&self, kind: &str, detail: String, request: Option<u64>) {
        let seq = self.total.fetch_add(1, Ordering::Relaxed) + 1;
        let ev = Event {
            seq,
            timestamp_ns: crate::trace::now_ns(),
            request,
            kind: kind.to_string(),
            detail,
        };
        let mut ring = self.ring.lock();
        if ring.len() == self.capacity {
            ring.pop_front();
        }
        ring.push_back(ev);
    }

    /// Copy out the retained events, oldest first.
    pub fn events(&self) -> Vec<Event> {
        self.ring.lock().iter().cloned().collect()
    }

    /// Total events ever emitted, including evicted ones.
    pub fn total_recorded(&self) -> u64 {
        self.total.load(Ordering::Relaxed)
    }

    /// Maximum number of retained events.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retains_in_order_below_capacity() {
        let ring = EventRing::new(8);
        ring.emit("a", "1");
        ring.emit("b", "2");
        let evs = ring.events();
        assert_eq!(evs.len(), 2);
        assert_eq!((evs[0].seq, evs[0].kind.as_str()), (1, "a"));
        assert_eq!((evs[1].seq, evs[1].kind.as_str()), (2, "b"));
        assert_eq!(ring.total_recorded(), 2);
    }

    #[test]
    fn wraparound_drops_oldest_and_keeps_count() {
        let ring = EventRing::new(3);
        for i in 0..10 {
            ring.emit("tick", format!("event {i}"));
        }
        let evs = ring.events();
        assert_eq!(evs.len(), 3);
        // Seq 8, 9, 10 survive; 1..=7 were evicted.
        assert_eq!(
            evs.iter().map(|e| e.seq).collect::<Vec<_>>(),
            vec![8, 9, 10]
        );
        assert_eq!(evs[0].detail, "event 7");
        assert_eq!(ring.total_recorded(), 10);
    }

    #[test]
    fn zero_capacity_is_clamped_to_one() {
        let ring = EventRing::new(0);
        ring.emit("a", "1");
        ring.emit("a", "2");
        assert_eq!(ring.capacity(), 1);
        assert_eq!(ring.events().len(), 1);
        assert_eq!(ring.events()[0].seq, 2);
    }

    #[test]
    fn events_are_timestamped_and_optionally_request_scoped() {
        let ring = EventRing::new(4);
        let before = crate::trace::now_ns();
        ring.emit("failure", "box 0 declared failed");
        ring.emit_for_request("repoint", "request 7 re-pointed", 7);
        let evs = ring.events();
        assert!(evs[0].timestamp_ns >= before);
        assert!(evs[1].timestamp_ns >= evs[0].timestamp_ns);
        assert_eq!(evs[0].request, None);
        assert_eq!(evs[1].request, Some(7));
    }

    #[test]
    fn concurrent_emitters_never_exceed_capacity() {
        let ring = std::sync::Arc::new(EventRing::new(16));
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let ring = ring.clone();
                // netagg-lint: allow(no-raw-spawn) concurrency smoke test hammers the ring from plain threads
                std::thread::spawn(move || {
                    for i in 0..100 {
                        ring.emit("t", format!("{t}:{i}"));
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(ring.events().len(), 16);
        assert_eq!(ring.total_recorded(), 400);
    }
}
