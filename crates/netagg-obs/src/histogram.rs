//! Fixed-bucket log-linear latency histogram.

use std::sync::atomic::{AtomicU64, Ordering};

/// Sub-bucket resolution: each power-of-two range is split into
/// `2^SUB_BITS` linear sub-buckets, bounding quantile error at
/// `1 / 2^SUB_BITS` (12.5 %).
const SUB_BITS: u32 = 3;
const SUB_COUNT: u64 = 1 << SUB_BITS; // 8
/// Bucket count covering the full `u64` value range: values below 8 get
/// one exact bucket each, then 61 octaves × 8 sub-buckets.
const NUM_BUCKETS: usize = ((64 - SUB_BITS + 1) as usize) << SUB_BITS; // 496

/// A lock-free latency histogram with log-linear buckets.
///
/// Values are dimensionless `u64`s; by convention the NetAgg stack records
/// **microseconds** (metric names carry a `_us` suffix). Recording is a
/// handful of relaxed atomic operations; quantiles are computed only when
/// a snapshot is taken.
///
/// ```
/// use netagg_obs::Histogram;
///
/// let h = Histogram::new();
/// for v in 1..=100u64 {
///     h.record(v);
/// }
/// let s = h.snapshot();
/// assert_eq!(s.count, 100);
/// assert_eq!(s.min, 1);
/// assert_eq!(s.max, 100);
/// // Log-linear buckets guarantee ≤ 12.5 % error on quantiles.
/// assert!((s.p50 as f64 - 50.0).abs() / 50.0 <= 0.125);
/// ```
#[derive(Debug)]
pub struct Histogram {
    buckets: Box<[AtomicU64]>,
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Create an empty histogram.
    pub fn new() -> Self {
        let buckets = (0..NUM_BUCKETS).map(|_| AtomicU64::new(0)).collect();
        Self {
            buckets,
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// Record one value.
    pub fn record(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.min.fetch_min(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Record a [`std::time::Duration`] in microseconds.
    ///
    /// ```
    /// use netagg_obs::Histogram;
    /// use std::time::Duration;
    ///
    /// let h = Histogram::new();
    /// h.record_duration(Duration::from_millis(2));
    /// assert_eq!(h.snapshot().min, 2000);
    /// ```
    pub fn record_duration(&self, d: std::time::Duration) {
        self.record(d.as_micros().min(u64::MAX as u128) as u64);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Take a point-in-time [`HistogramSnapshot`] with p50/p95/p99.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let count = self.count.load(Ordering::Relaxed);
        let counts: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let min = self.min.load(Ordering::Relaxed);
        HistogramSnapshot {
            count,
            sum: self.sum.load(Ordering::Relaxed),
            min: if count == 0 { 0 } else { min },
            max: self.max.load(Ordering::Relaxed),
            p50: quantile(&counts, count, 0.50),
            p95: quantile(&counts, count, 0.95),
            p99: quantile(&counts, count, 0.99),
        }
    }
}

/// Point-in-time summary of a [`Histogram`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HistogramSnapshot {
    /// Number of recorded values.
    pub count: u64,
    /// Sum of all recorded values (wrapping on overflow).
    pub sum: u64,
    /// Smallest recorded value (0 when empty).
    pub min: u64,
    /// Largest recorded value (0 when empty).
    pub max: u64,
    /// Estimated 50th percentile (≤ 12.5 % bucket error).
    pub p50: u64,
    /// Estimated 95th percentile (≤ 12.5 % bucket error).
    pub p95: u64,
    /// Estimated 99th percentile (≤ 12.5 % bucket error).
    pub p99: u64,
}

impl HistogramSnapshot {
    /// Mean of the recorded values, 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// Map a value to its bucket. Values below `SUB_COUNT` get exact buckets;
/// above that, the top `SUB_BITS + 1` significant bits select an
/// (octave, sub-bucket) pair, giving geometrically growing bucket widths.
fn bucket_index(value: u64) -> usize {
    if value < SUB_COUNT {
        return value as usize;
    }
    let msb = 63 - value.leading_zeros(); // >= SUB_BITS
    let octave = (msb - SUB_BITS + 1) as usize;
    let sub = ((value >> (msb - SUB_BITS)) & (SUB_COUNT - 1)) as usize;
    (octave << SUB_BITS) + sub
}

/// Largest value that maps to bucket `index`; used as the quantile
/// estimate so reported percentiles never under-state the latency.
fn bucket_upper_bound(index: usize) -> u64 {
    if index < SUB_COUNT as usize {
        return index as u64;
    }
    let octave = (index >> SUB_BITS) as u32;
    let sub = (index & (SUB_COUNT as usize - 1)) as u64;
    let width = 1u64 << (octave - 1);
    (SUB_COUNT + sub) * width + (width - 1)
}

fn quantile(counts: &[u64], total: u64, q: f64) -> u64 {
    if total == 0 {
        return 0;
    }
    // Exclusive rank (floor + 1): the estimate is the value *above* the
    // q-fraction of samples, so a tail outlier is reported by the tail
    // quantile — percentiles must never under-state the latency.
    let rank = ((q * total as f64).floor() as u64 + 1).clamp(1, total);
    let mut seen = 0u64;
    for (i, &c) in counts.iter().enumerate() {
        seen += c;
        if seen >= rank {
            return bucket_upper_bound(i);
        }
    }
    bucket_upper_bound(counts.len() - 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_monotone_and_continuous() {
        // Exhaustive over the low range, spot checks at octave borders.
        let mut prev = bucket_index(0);
        for v in 1..10_000u64 {
            let b = bucket_index(v);
            assert!(b >= prev, "index must not decrease at v={v}");
            assert!(b - prev <= 1, "no bucket skipped at v={v}");
            prev = b;
        }
        for shift in 3..63u32 {
            let v = 1u64 << shift;
            assert_eq!(
                bucket_index(v),
                bucket_index(v - 1) + 1,
                "border at 2^{shift}"
            );
        }
        assert!(bucket_index(u64::MAX) < NUM_BUCKETS);
    }

    #[test]
    fn bucket_bounds_bracket_their_values() {
        for v in [0u64, 1, 7, 8, 9, 255, 256, 1000, 123_456, u64::MAX / 2] {
            let i = bucket_index(v);
            let upper = bucket_upper_bound(i);
            assert!(upper >= v, "upper bound {upper} below value {v}");
            // The upper bound stays within one sub-bucket width (12.5 %).
            assert!(
                (upper - v) as f64 <= (v as f64 / SUB_COUNT as f64).max(1.0),
                "bound {upper} too loose for {v}"
            );
            if i + 1 < NUM_BUCKETS {
                assert!(bucket_upper_bound(i + 1) > upper);
            }
        }
    }

    #[test]
    fn empty_histogram_snapshot_is_zeroed() {
        let s = Histogram::new().snapshot();
        assert_eq!(s, HistogramSnapshot::default());
        assert_eq!(s.mean(), 0.0);
    }

    #[test]
    fn single_value_snapshot() {
        let h = Histogram::new();
        h.record(42);
        let s = h.snapshot();
        assert_eq!((s.count, s.sum, s.min, s.max), (1, 42, 42, 42));
        for p in [s.p50, s.p95, s.p99] {
            assert!((42..=47).contains(&p), "estimate {p} outside bucket of 42");
        }
    }

    #[test]
    fn uniform_percentiles_within_error_bound() {
        let h = Histogram::new();
        for v in 1..=10_000u64 {
            h.record(v);
        }
        let s = h.snapshot();
        for (est, exact) in [(s.p50, 5_000.0), (s.p95, 9_500.0), (s.p99, 9_900.0)] {
            let err = (est as f64 - exact) / exact;
            assert!(
                (-0.001..=0.125).contains(&err),
                "estimate {est} vs exact {exact}: err {err}"
            );
        }
        assert!((s.mean() - 5_000.5).abs() < 1e-6);
    }

    #[test]
    fn skewed_distribution_percentiles() {
        let h = Histogram::new();
        for _ in 0..99 {
            h.record(10);
        }
        h.record(100_000);
        let s = h.snapshot();
        assert!(s.p50 <= 11);
        assert!(s.p95 <= 11);
        assert!(s.p99 >= 100_000);
        assert_eq!(s.max, 100_000);
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let h = std::sync::Arc::new(Histogram::new());
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let h = h.clone();
                // netagg-lint: allow(no-raw-spawn) concurrency smoke test hammers the histogram from plain threads
                std::thread::spawn(move || {
                    for i in 0..1_000u64 {
                        h.record(t * 1_000 + i);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(h.count(), 4_000);
    }
}
