//! Runtime observability for the NetAgg stack.
//!
//! The paper's evaluation (Section 4) hinges on quantities the runtime must
//! measure about itself: per-task execution time feeding adaptive WFQ
//! weights, per-request completion latency at the master shim, and the
//! failure/straggler re-routes taken on the data path. This crate provides
//! the shared instrumentation layer those measurements are built on:
//!
//! * [`MetricsRegistry`] — a cheaply clonable, thread-safe registry handing
//!   out named [`Counter`]s, [`Gauge`]s and [`Histogram`]s. Handles are
//!   plain atomics: updating one on the data path is a single
//!   `fetch_add`/`store`, no lock is taken after the handle is created.
//! * [`Histogram`] — a fixed-footprint log-linear latency histogram
//!   (8 sub-buckets per power of two, ≤ 12.5 % quantile error) with
//!   p50/p95/p99 extraction.
//! * [`EventRing`] — a bounded ring buffer of structured [`Event`]s for
//!   rare, high-signal occurrences (failure detections, straggler
//!   escalations) that a counter alone would flatten.
//! * [`MetricsSnapshot`] — a point-in-time copy of everything in a
//!   registry that serializes to JSON ([`MetricsSnapshot::to_json`]) and
//!   human-readable text ([`MetricsSnapshot::to_text`]).
//! * [`trace`] — causal per-request tracing: a bounded, sampled
//!   [`trace::TraceRecorder`] of [`trace::SpanRecord`]s stitched across
//!   components by a wire-carried [`trace::TraceCtx`], exported as Chrome
//!   trace-event JSON and per-request critical-path summaries
//!   (DESIGN.md §11).
//!
//! # Quick example
//!
//! ```
//! use netagg_obs::MetricsRegistry;
//!
//! let obs = MetricsRegistry::new();
//!
//! // Handles are Arc-backed: create once, update lock-free on the hot path.
//! let tasks = obs.counter("aggbox.tasks_executed");
//! let lat = obs.histogram("aggbox.task_exec_us");
//! tasks.inc();
//! lat.record(250); // microseconds
//!
//! obs.emit("failure", "box 3 declared failed");
//!
//! let snap = obs.snapshot();
//! assert_eq!(snap.counter("aggbox.tasks_executed"), Some(1));
//! assert_eq!(snap.histogram("aggbox.task_exec_us").unwrap().count, 1);
//! assert!(snap.to_json().contains("\"aggbox.tasks_executed\": 1"));
//! ```

#![warn(missing_docs)]

mod events;
mod histogram;
pub mod names;
mod registry;
mod snapshot;
pub mod trace;

pub use events::{Event, EventRing};
pub use histogram::{Histogram, HistogramSnapshot};
pub use registry::{Counter, Gauge, MetricsRegistry};
pub use snapshot::MetricsSnapshot;
