//! Offline shim for the [`proptest`](https://docs.rs/proptest) crate.
//!
//! The build container has no crates.io access, so the workspace patches
//! `proptest` to this minimal property-testing engine (see
//! `vendor/README.md`). It keeps the same source surface the tests use —
//! `proptest!`, `prop_assert*!`, `prop_oneof!`, `any`, `Just`,
//! `collection::vec`, `sample::select`, `.prop_map`,
//! `ProptestConfig::with_cases` — but with fixed-seed random sampling and
//! **no shrinking**: a failing case panics with the sampled inputs via the
//! assert message rather than minimising them.

use std::ops::Range;

/// Deterministic generator driving all strategies (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A generator with the fixed default seed.
    pub fn new(seed: u64) -> Self {
        Self {
            state: seed ^ 0x5DEE_CE66_D1CE_B00C,
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `usize` below `bound` (`bound > 0`).
    pub fn below(&mut self, bound: usize) -> usize {
        ((self.next_u64() as u128 * bound as u128) >> 64) as usize
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Run configuration accepted by `#![proptest_config(..)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

/// Value-generation strategies.
pub mod strategy {
    use super::TestRng;

    /// A recipe for generating random values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value;
        /// Draw one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values with `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Box the strategy, erasing its concrete type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A type-erased strategy, as produced by [`Strategy::boxed`].
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<T> Strategy for Box<dyn Strategy<Value = T>> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            (**self).sample(rng)
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// Strategy yielding a constant value (upstream `Just`).
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Uniform choice among boxed alternatives (backs `prop_oneof!`).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Build from a non-empty set of alternatives.
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Self { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.options.len());
            self.options[i].sample(rng)
        }
    }

    macro_rules! tuple_strategy {
        ($($s:ident/$v:ident/$i:tt),+) => {
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$i.sample(rng),)+)
                }
            }
        };
    }
    tuple_strategy!(A/a/0);
    tuple_strategy!(A/a/0, B/b/1);
    tuple_strategy!(A/a/0, B/b/1, C/c/2);
    tuple_strategy!(A/a/0, B/b/1, C/c/2, D/d/3);
    tuple_strategy!(A/a/0, B/b/1, C/c/2, D/d/3, E/e/4);
}

use strategy::Strategy;

/// Uniform sampling over primitive ranges, e.g. `0u64..1_000`.
macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (self.start as i128 + v) as $t
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (rng.unit_f64() as $t) * (self.end - self.start)
            }
        }
    )*};
}
float_range_strategy!(f32, f64);

/// `any::<T>()` support: full-domain sampling per type.
pub trait Arbitrary: Sized {
    /// Draw one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}
impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.unit_f64()
    }
}

/// Strategy returned by [`any`].
#[derive(Debug, Clone, Default)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// A strategy for any value of type `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Collection strategies.
pub mod collection {
    use super::strategy::Strategy;
    use super::TestRng;
    use std::ops::Range;

    /// Strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        elem: S,
        size: Range<usize>,
    }

    /// A `Vec` of `size` elements drawn from `elem`.
    pub fn vec<S: Strategy>(elem: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty size range");
        VecStrategy { elem, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let span = self.size.end - self.size.start;
            let n = self.size.start + rng.below(span);
            (0..n).map(|_| self.elem.sample(rng)).collect()
        }
    }
}

/// Sampling from explicit value lists.
pub mod sample {
    use super::strategy::Strategy;
    use super::TestRng;

    /// Strategy returned by [`select`].
    pub struct Select<T: Clone> {
        options: Vec<T>,
    }

    /// Uniformly pick one of `options`.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select over empty list");
        Select { options }
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            self.options[rng.below(self.options.len())].clone()
        }
    }
}

/// Everything tests import with `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
    pub use crate::{Arbitrary, ProptestConfig, TestRng};
}

/// Assert inside a property; failure panics with the sampled case visible
/// in the assert message (no shrinking in this shim).
#[macro_export]
macro_rules! prop_assert {
    ($($arg:tt)*) => { assert!($($arg)*) };
}

/// Equality assert inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($arg:tt)*) => { assert_eq!($($arg)*) };
}

/// Inequality assert inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($arg:tt)*) => { assert_ne!($($arg)*) };
}

/// Uniform choice among several strategies with the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(Box::new($strat) as $crate::strategy::BoxedStrategy<_>),+
        ])
    };
}

/// Define `#[test]` functions whose arguments are drawn from strategies.
///
/// Supports the upstream forms the workspace uses: an optional leading
/// `#![proptest_config(expr)]`, doc comments, and one or more
/// `name(pat in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (
        @cfg ($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($pat:pat in $strat:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::new(0x6e65_7461_6767);
                for _case in 0..config.cases {
                    $(let $pat = $crate::strategy::Strategy::sample(&$strat, &mut rng);)+
                    $body
                }
            }
        )*
    };
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest!(@cfg ($cfg) $($rest)*);
    };
    ( $($rest:tt)* ) => {
        $crate::proptest!(@cfg ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_in_bounds(x in 3usize..12, f in 0.5f64..1.5) {
            prop_assert!((3..12).contains(&x));
            prop_assert!((0.5..1.5).contains(&f));
        }

        #[test]
        fn vec_sizes_respected(
            v in crate::collection::vec(any::<u8>(), 2..5),
            nested in crate::collection::vec(crate::collection::vec(any::<u8>(), 0..3), 1..4),
        ) {
            prop_assert!((2..5).contains(&v.len()));
            prop_assert!((1..4).contains(&nested.len()));
        }

        #[test]
        fn oneof_and_select(
            s in prop_oneof![Just(1u8), Just(2u8), (10u8..20).prop_map(|v| v)],
            p in crate::sample::select(vec!["a", "b", "c"]),
        ) {
            prop_assert!(s == 1 || s == 2 || (10..20).contains(&s));
            prop_assert!(["a", "b", "c"].contains(&p));
        }

        #[test]
        fn tuples_sample((a, b) in (any::<u8>(), 0u16..5)) {
            let _ = a;
            prop_assert!(b < 5);
        }
    }
}
