//! Offline shim for the [`criterion`](https://docs.rs/criterion) crate.
//!
//! The build container has no crates.io access, so the workspace patches
//! `criterion` to this minimal harness (see `vendor/README.md`). It keeps
//! the bench sources compiling and runnable: each benchmark runs a short
//! calibrated loop and prints a single mean-time line, with none of the
//! real crate's statistics, plots or regression tracking.

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Throughput annotation attached to a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// A benchmark identifier built from a name and a parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        Self {
            id: format!("{}/{parameter}", name.into()),
        }
    }

    /// Just the parameter as the id.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Times closures handed to [`Bencher::iter`].
pub struct Bencher {
    mean_ns: f64,
}

impl Bencher {
    /// Run `f` in a calibrated loop and record its mean wall time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm up, then time enough iterations to fill ~50 ms.
        let t0 = Instant::now();
        black_box(f());
        let once = t0.elapsed().max(Duration::from_nanos(50));
        let iters = (Duration::from_millis(50).as_nanos() / once.as_nanos()).clamp(1, 10_000);
        let t1 = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        self.mean_ns = t1.elapsed().as_nanos() as f64 / iters as f64;
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Annotate subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Accepted for API compatibility; the shim ignores sample counts.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Run one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher { mean_ns: 0.0 };
        f(&mut b);
        self.report(&id.to_string(), b.mean_ns);
        self
    }

    /// Run one benchmark parameterised by `input`.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl fmt::Display,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher { mean_ns: 0.0 };
        f(&mut b, input);
        self.report(&id.to_string(), b.mean_ns);
        self
    }

    /// Finish the group (prints nothing extra in the shim).
    pub fn finish(&mut self) {}

    fn report(&self, id: &str, mean_ns: f64) {
        let mut line = format!("{}/{id}: {:.1} ns/iter", self.name, mean_ns);
        match self.throughput {
            Some(Throughput::Bytes(n)) => {
                let gbps = n as f64 / mean_ns.max(1.0);
                line.push_str(&format!("  ({gbps:.3} GB/s)"));
            }
            Some(Throughput::Elements(n)) => {
                let meps = n as f64 * 1e3 / mean_ns.max(1.0);
                line.push_str(&format!("  ({meps:.3} Melem/s)"));
            }
            None => {}
        }
        println!("{line}");
    }
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            throughput: None,
            _parent: self,
        }
    }

    /// Run a single stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.benchmark_group("bench").bench_function(id, f);
        self
    }
}

/// Collect benchmark functions into one group runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Generate `main` running the named groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
