//! Offline shim for the [`serde`](https://docs.rs/serde) crate.
//!
//! The build container has no crates.io access and the workspace never
//! serializes through serde (there is no `serde_json`); the derives on
//! simulator config/result types exist so a future environment with real
//! serde can emit them. This shim keeps those annotations compiling:
//! `Serialize`/`Deserialize` are marker traits and the derives (enabled by
//! the `derive` feature, like upstream) expand to nothing.

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
