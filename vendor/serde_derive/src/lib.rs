//! Offline shim for the `serde_derive` proc-macro crate.
//!
//! The workspace carries no serializer (there is no `serde_json`), so the
//! `#[derive(serde::Serialize, serde::Deserialize)]` annotations in the
//! tree only need to parse, not generate code. Both derives expand to
//! nothing; the marker traits in the `serde` shim are never required as
//! bounds anywhere in the workspace.

use proc_macro::TokenStream;

/// No-op `Serialize` derive.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `Deserialize` derive.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
