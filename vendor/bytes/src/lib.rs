//! Offline shim for the [`bytes`](https://docs.rs/bytes) crate.
//!
//! The build container has no crates.io access, so the workspace patches
//! `bytes` to this minimal source-compatible subset (see `vendor/README.md`).
//! `Bytes` is a cheaply clonable `Arc<[u8]>` window; `BytesMut` is a plain
//! `Vec<u8>` with a read cursor. Semantics match the real crate for the
//! operations NetAgg uses; zero-copy `split_to` sharing is preserved for
//! `Bytes` (it only moves the window), while `BytesMut::split_to` copies.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::Arc;

/// A cheaply clonable, contiguous, immutable byte buffer.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// A buffer borrowing nothing: the static slice is copied once.
    pub fn from_static(s: &'static [u8]) -> Self {
        Self::from_slice(s)
    }

    /// Copy `s` into a new buffer.
    pub fn copy_from_slice(s: &[u8]) -> Self {
        Self::from_slice(s)
    }

    fn from_slice(s: &[u8]) -> Self {
        Self {
            data: Arc::from(s),
            start: 0,
            end: s.len(),
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Split off and return the first `at` bytes, sharing the allocation.
    pub fn split_to(&mut self, at: usize) -> Bytes {
        assert!(at <= self.len(), "split_to out of bounds");
        let head = Bytes {
            data: self.data.clone(),
            start: self.start,
            end: self.start + at,
        };
        self.start += at;
        head
    }

    /// A sub-window of this buffer, sharing the allocation.
    pub fn slice(&self, range: impl std::ops::RangeBounds<usize>) -> Bytes {
        use std::ops::Bound;
        let start = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(start <= end && end <= self.len(), "slice out of bounds");
        Bytes {
            data: self.data.clone(),
            start: self.start + start,
            end: self.start + end,
        }
    }

    /// Copy the contents into a `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b{:?}", self.as_slice())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl Eq for Bytes {}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}
impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}
impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl PartialEq<Bytes> for [u8] {
    fn eq(&self, other: &Bytes) -> bool {
        self == other.as_slice()
    }
}
impl PartialEq<Bytes> for Vec<u8> {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl PartialEq<str> for Bytes {
    fn eq(&self, other: &str) -> bool {
        self.as_slice() == other.as_bytes()
    }
}
impl PartialEq<&str> for Bytes {
    fn eq(&self, other: &&str) -> bool {
        self.as_slice() == other.as_bytes()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let len = v.len();
        Self {
            data: Arc::from(v),
            start: 0,
            end: len,
        }
    }
}
impl From<String> for Bytes {
    fn from(s: String) -> Self {
        Self::from(s.into_bytes())
    }
}
impl From<&'static str> for Bytes {
    fn from(s: &'static str) -> Self {
        Self::from_slice(s.as_bytes())
    }
}
impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Self {
        Self::from_slice(s)
    }
}
impl From<Box<[u8]>> for Bytes {
    fn from(b: Box<[u8]>) -> Self {
        Self::from(b.into_vec())
    }
}
impl From<BytesMut> for Bytes {
    fn from(b: BytesMut) -> Self {
        b.freeze()
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Self {
        Self::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

impl IntoIterator for Bytes {
    type Item = u8;
    type IntoIter = std::vec::IntoIter<u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.to_vec().into_iter()
    }
}
impl<'a> IntoIterator for &'a Bytes {
    type Item = &'a u8;
    type IntoIter = std::slice::Iter<'a, u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

/// A growable byte buffer with a read cursor.
#[derive(Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    vec: Vec<u8>,
    read: usize,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty buffer with `cap` bytes pre-allocated.
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            vec: Vec::with_capacity(cap),
            read: 0,
        }
    }

    /// Unread length in bytes.
    pub fn len(&self) -> usize {
        self.vec.len() - self.read
    }

    /// Whether the unread portion is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Reserve space for at least `n` more bytes.
    pub fn reserve(&mut self, n: usize) {
        self.vec.reserve(n);
    }

    /// Remove all contents.
    pub fn clear(&mut self) {
        self.vec.clear();
        self.read = 0;
    }

    /// Append a slice.
    pub fn extend_from_slice(&mut self, s: &[u8]) {
        self.vec.extend_from_slice(s);
    }

    /// Split off and return the first `at` unread bytes.
    pub fn split_to(&mut self, at: usize) -> BytesMut {
        assert!(at <= self.len(), "split_to out of bounds");
        let head = self.vec[self.read..self.read + at].to_vec();
        self.read += at;
        self.compact();
        BytesMut { vec: head, read: 0 }
    }

    /// Split off and return the entire unread contents, leaving the
    /// buffer empty.
    pub fn split(&mut self) -> BytesMut {
        let n = self.len();
        self.split_to(n)
    }

    /// Freeze into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        if self.read == 0 {
            Bytes::from(self.vec)
        } else {
            Bytes::from(self.vec[self.read..].to_vec())
        }
    }

    fn as_slice(&self) -> &[u8] {
        &self.vec[self.read..]
    }

    fn compact(&mut self) {
        if self.read > 0 && self.read >= self.vec.len() / 2 {
            self.vec.drain(..self.read);
            self.read = 0;
        }
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}
impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        let read = self.read;
        &mut self.vec[read..]
    }
}
impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b{:?}", self.as_slice())
    }
}

impl From<&[u8]> for BytesMut {
    fn from(s: &[u8]) -> Self {
        Self {
            vec: s.to_vec(),
            read: 0,
        }
    }
}

/// Read access to a sequence of bytes (the subset of `bytes::Buf` NetAgg
/// uses). All fixed-width reads are big-endian, like the real crate's
/// `get_*` defaults.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;
    /// The unread bytes as one contiguous slice.
    fn chunk(&self) -> &[u8];
    /// Skip `n` bytes.
    fn advance(&mut self, n: usize);

    /// Whether any bytes remain.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Read one byte.
    fn get_u8(&mut self) -> u8 {
        let v = self.chunk()[0];
        self.advance(1);
        v
    }
    /// Read a big-endian `u16`.
    fn get_u16(&mut self) -> u16 {
        let mut b = [0u8; 2];
        b.copy_from_slice(&self.chunk()[..2]);
        self.advance(2);
        u16::from_be_bytes(b)
    }
    /// Read a big-endian `u32`.
    fn get_u32(&mut self) -> u32 {
        let mut b = [0u8; 4];
        b.copy_from_slice(&self.chunk()[..4]);
        self.advance(4);
        u32::from_be_bytes(b)
    }
    /// Read a big-endian `u64`.
    fn get_u64(&mut self) -> u64 {
        let mut b = [0u8; 8];
        b.copy_from_slice(&self.chunk()[..8]);
        self.advance(8);
        u64::from_be_bytes(b)
    }
    /// Read a big-endian `f64`.
    fn get_f64(&mut self) -> f64 {
        f64::from_bits(self.get_u64())
    }
    /// Fill `dst` from the front of the buffer.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        self.as_slice()
    }
    fn advance(&mut self, n: usize) {
        assert!(n <= self.len(), "advance out of bounds");
        self.start += n;
    }
}

impl Buf for BytesMut {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        self.as_slice()
    }
    fn advance(&mut self, n: usize) {
        assert!(n <= self.len(), "advance out of bounds");
        self.read += n;
        self.compact();
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        self
    }
    fn advance(&mut self, n: usize) {
        *self = &self[n..];
    }
}

/// Write access to a growable byte sink (the subset of `bytes::BufMut`
/// NetAgg uses). All fixed-width writes are big-endian.
pub trait BufMut {
    /// Append a slice.
    fn put_slice(&mut self, s: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }
    /// Append a big-endian `u16`.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }
    /// Append a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }
    /// Append a big-endian `u64`.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }
    /// Append a big-endian `f64`.
    fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, s: &[u8]) {
        self.extend_from_slice(s);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, s: &[u8]) {
        self.extend_from_slice(s);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bytes_split_shares_and_windows() {
        let mut b = Bytes::from(vec![1, 2, 3, 4, 5]);
        let head = b.split_to(2);
        assert_eq!(&head[..], &[1, 2]);
        assert_eq!(&b[..], &[3, 4, 5]);
        assert_eq!(b.len(), 3);
    }

    #[test]
    fn round_trip_fixed_width() {
        let mut m = BytesMut::new();
        m.put_u8(7);
        m.put_u16(0x0102);
        m.put_u32(0xdeadbeef);
        m.put_u64(42);
        m.put_f64(1.5);
        let mut b = m.freeze();
        assert_eq!(b.get_u8(), 7);
        assert_eq!(b.get_u16(), 0x0102);
        assert_eq!(b.get_u32(), 0xdeadbeef);
        assert_eq!(b.get_u64(), 42);
        assert_eq!(b.get_f64(), 1.5);
        assert_eq!(b.remaining(), 0);
    }

    #[test]
    fn bytesmut_split_to_then_freeze() {
        let mut m = BytesMut::new();
        m.extend_from_slice(b"hello world");
        let hello = m.split_to(5).freeze();
        assert_eq!(hello, "hello");
        assert_eq!(&m[..], b" world");
    }
}
