//! Offline shim for the [`rand`](https://docs.rs/rand) crate (0.9 API).
//!
//! The build container has no crates.io access, so the workspace patches
//! `rand` to this self-contained subset (see `vendor/README.md`).
//! [`rngs::StdRng`] is a SplitMix64 generator: not the real crate's
//! ChaCha12, but deterministic for a given `seed_from_u64` seed, which is
//! all the simulator and workload generators rely on. Streams therefore
//! differ from upstream `rand` — seeds reproduce results *within* this
//! tree, not across implementations.

use std::ops::{Range, RangeInclusive};

/// Core generator interface: a source of random `u64`s.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Types that can be sampled uniformly from an `RngCore`.
pub trait Standard: Sized {
    /// Draw one value.
    fn sample_from(rng: &mut dyn RngCore) -> Self;
}

impl Standard for f64 {
    fn sample_from(rng: &mut dyn RngCore) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
impl Standard for f32 {
    fn sample_from(rng: &mut dyn RngCore) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}
impl Standard for bool {
    fn sample_from(rng: &mut dyn RngCore) -> Self {
        rng.next_u64() & 1 == 1
    }
}
macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_from(rng: &mut dyn RngCore) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges that can be sampled uniformly (`Range` and `RangeInclusive`
/// over the primitive numeric types).
pub trait SampleRange<T> {
    /// Draw one value from the range.
    fn sample_from(self, rng: &mut dyn RngCore) -> T;
}

macro_rules! range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                // Lemire's multiply-shift keeps the draw uniform enough
                // for workload generation without a rejection loop.
                let v = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (self.start as i128 + v) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from(self, rng: &mut dyn RngCore) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range");
                let span = (end as i128 - start as i128 + 1) as u128;
                let v = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (start as i128 + v) as $t
            }
        }
    )*};
}
range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "empty range");
                let u = f64::sample_from(rng) as $t;
                self.start + u * (self.end - self.start)
            }
        }
    )*};
}
range_float!(f32, f64);

/// User-facing random-value methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// A uniform value of type `T` (floats in `[0, 1)`).
    fn random<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_from(self)
    }

    /// A uniform value in `range`.
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample_from(self) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Generators constructible from a seed.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard deterministic generator (SplitMix64 in this shim).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea, Flood 2014): passes BigCrush when
            // used as a stream, one add + two xor-shift-multiplies a draw.
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            Self { state: seed }
        }
    }

    /// Alias kept for call sites that name the small generator.
    pub type SmallRng = StdRng;
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64_pub(), b.next_u64_pub());
        }
    }

    impl StdRng {
        fn next_u64_pub(&mut self) -> u64 {
            use super::RngCore;
            self.next_u64()
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v: usize = r.random_range(3..12);
            assert!((3..12).contains(&v));
            let f: f64 = r.random_range(0.5..1.5);
            assert!((0.5..1.5).contains(&f));
            let u: f64 = r.random();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn uniformish() {
        let mut r = StdRng::seed_from_u64(42);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| r.random::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
