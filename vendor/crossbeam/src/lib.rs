//! Offline shim for the [`crossbeam`](https://docs.rs/crossbeam) crate.
//!
//! The build container has no crates.io access, so the workspace patches
//! `crossbeam` to this wrapper over `std::sync::mpsc` (see
//! `vendor/README.md`). Only the `channel` module subset NetAgg uses is
//! provided: `bounded`/`unbounded` construction, blocking/timed receives
//! and non-blocking sends, with crossbeam's error types.

/// MPSC channels with the `crossbeam-channel` API shape.
pub mod channel {
    use std::fmt;
    use std::sync::mpsc;
    use std::time::Duration;

    /// Error returned by [`Sender::send`] when the receiver is gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    /// Error returned by [`Sender::try_send`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TrySendError<T> {
        /// The bounded channel is full.
        Full(T),
        /// The receiver is gone.
        Disconnected(T),
    }

    /// Error returned by [`Receiver::recv`] when all senders are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// No message arrived within the timeout.
        Timeout,
        /// All senders are gone and the channel is drained.
        Disconnected,
    }

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The channel is currently empty.
        Empty,
        /// All senders are gone and the channel is drained.
        Disconnected,
    }

    enum Tx<T> {
        Unbounded(mpsc::Sender<T>),
        Bounded(mpsc::SyncSender<T>),
    }

    impl<T> Clone for Tx<T> {
        fn clone(&self) -> Self {
            match self {
                Tx::Unbounded(s) => Tx::Unbounded(s.clone()),
                Tx::Bounded(s) => Tx::Bounded(s.clone()),
            }
        }
    }

    /// The sending half of a channel. Clonable.
    pub struct Sender<T>(Tx<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    impl<T> Sender<T> {
        /// Send `msg`, blocking while a bounded channel is full.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            match &self.0 {
                Tx::Unbounded(s) => s.send(msg).map_err(|e| SendError(e.0)),
                Tx::Bounded(s) => s.send(msg).map_err(|e| SendError(e.0)),
            }
        }

        /// Send without blocking; fails if the bounded channel is full.
        pub fn try_send(&self, msg: T) -> Result<(), TrySendError<T>> {
            match &self.0 {
                Tx::Unbounded(s) => s.send(msg).map_err(|e| TrySendError::Disconnected(e.0)),
                Tx::Bounded(s) => s.try_send(msg).map_err(|e| match e {
                    mpsc::TrySendError::Full(v) => TrySendError::Full(v),
                    mpsc::TrySendError::Disconnected(v) => TrySendError::Disconnected(v),
                }),
            }
        }
    }

    /// The receiving half of a channel.
    ///
    /// Crossbeam receivers are `Sync` (shared by reference across
    /// threads); std's are not, so the shim serialises access through a
    /// mutex. Contention is irrelevant — NetAgg drains each receiver from
    /// one thread at a time.
    pub struct Receiver<T>(std::sync::Mutex<mpsc::Receiver<T>>);

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }

    impl<T> Receiver<T> {
        fn inner(&self) -> std::sync::MutexGuard<'_, mpsc::Receiver<T>> {
            self.0.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
        }

        /// Block until a message arrives or all senders disconnect.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.inner().recv().map_err(|_| RecvError)
        }

        /// Block up to `timeout` for a message.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.inner().recv_timeout(timeout).map_err(|e| match e {
                mpsc::RecvTimeoutError::Timeout => RecvTimeoutError::Timeout,
                mpsc::RecvTimeoutError::Disconnected => RecvTimeoutError::Disconnected,
            })
        }

        /// Receive without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.inner().try_recv().map_err(|e| match e {
                mpsc::TryRecvError::Empty => TryRecvError::Empty,
                mpsc::TryRecvError::Disconnected => TryRecvError::Disconnected,
            })
        }

        /// Blocking iterator over received messages, ending when all
        /// senders disconnect.
        pub fn iter(&self) -> impl Iterator<Item = T> + '_ {
            std::iter::from_fn(move || self.recv().ok())
        }
    }

    /// An unbounded FIFO channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(Tx::Unbounded(tx)), Receiver(std::sync::Mutex::new(rx)))
    }

    /// A bounded FIFO channel holding at most `cap` in-flight messages
    /// (`cap == 0` is a rendezvous channel).
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        (Sender(Tx::Bounded(tx)), Receiver(std::sync::Mutex::new(rx)))
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn unbounded_fifo() {
            let (tx, rx) = unbounded();
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv(), Ok(2));
            drop(tx);
            assert_eq!(rx.recv(), Err(RecvError));
        }

        #[test]
        fn bounded_try_send_full() {
            let (tx, rx) = bounded(1);
            tx.try_send(1).unwrap();
            assert_eq!(tx.try_send(2), Err(TrySendError::Full(2)));
            assert_eq!(rx.recv(), Ok(1));
        }

        #[test]
        fn recv_timeout_times_out() {
            let (tx, rx) = unbounded::<u8>();
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(5)),
                Err(RecvTimeoutError::Timeout)
            );
            drop(tx);
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(5)),
                Err(RecvTimeoutError::Disconnected)
            );
        }
    }
}
