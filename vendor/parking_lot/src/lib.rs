//! Offline shim for the [`parking_lot`](https://docs.rs/parking_lot) crate.
//!
//! The build container has no crates.io access, so the workspace patches
//! `parking_lot` to this wrapper over `std::sync` (see `vendor/README.md`).
//! Semantics match the real crate for the API subset NetAgg uses: locks
//! never poison (a panicked holder's poison flag is swallowed with
//! `PoisonError::into_inner`), `lock()`/`read()`/`write()` return guards
//! directly, and `Condvar::wait*` take the guard by `&mut`.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::PoisonError;
use std::time::Duration;

/// A mutual-exclusion lock that does not poison.
#[derive(Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// RAII guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized>(Option<std::sync::MutexGuard<'a, T>>);

impl<T> Mutex<T> {
    /// Create a mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Self(std::sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(Some(
            self.0.lock().unwrap_or_else(PoisonError::into_inner),
        ))
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(MutexGuard(Some(g))),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(MutexGuard(Some(e.into_inner()))),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

impl<T> From<T> for Mutex<T> {
    fn from(v: T) -> Self {
        Self::new(v)
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.0.as_ref().expect("guard present")
    }
}
impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.0.as_mut().expect("guard present")
    }
}

/// A reader-writer lock that does not poison.
#[derive(Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

/// RAII shared-read guard returned by [`RwLock::read`].
pub struct RwLockReadGuard<'a, T: ?Sized>(std::sync::RwLockReadGuard<'a, T>);
/// RAII exclusive-write guard returned by [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T: ?Sized>(std::sync::RwLockWriteGuard<'a, T>);

impl<T> RwLock<T> {
    /// Create a lock protecting `value`.
    pub const fn new(value: T) -> Self {
        Self(std::sync::RwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(self.0.read().unwrap_or_else(PoisonError::into_inner))
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(self.0.write().unwrap_or_else(PoisonError::into_inner))
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}
impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}
impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

/// Result of a timed [`Condvar`] wait.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// Whether the wait ended because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// A condition variable usable with [`MutexGuard`].
#[derive(Default)]
pub struct Condvar(std::sync::Condvar);

impl Condvar {
    /// Create a condition variable.
    pub const fn new() -> Self {
        Self(std::sync::Condvar::new())
    }

    /// Block until notified, releasing the guard while waiting.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.0.take().expect("guard present");
        let inner = self.0.wait(inner).unwrap_or_else(PoisonError::into_inner);
        guard.0 = Some(inner);
    }

    /// Block until notified or `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let inner = guard.0.take().expect("guard present");
        let (inner, res) = match self.0.wait_timeout(inner, timeout) {
            Ok((g, r)) => (g, r),
            Err(e) => e.into_inner(),
        };
        guard.0 = Some(inner);
        WaitTimeoutResult(res.timed_out())
    }

    /// Wake one waiting thread.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wake all waiting threads.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Condvar")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_condvar_handoff() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = pair.clone();
        let t = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut done = m.lock();
            *done = true;
            cv.notify_one();
            drop(done);
        });
        let (m, cv) = &*pair;
        let mut done = m.lock();
        while !*done {
            cv.wait(&mut done);
        }
        drop(done);
        t.join().unwrap();
    }

    #[test]
    fn wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let res = cv.wait_for(&mut g, Duration::from_millis(10));
        assert!(res.timed_out());
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(1);
        assert_eq!(*l.read(), 1);
        *l.write() = 2;
        assert_eq!(*l.read(), 2);
    }
}
