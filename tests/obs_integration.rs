//! End-to-end observability: the crate-level quick example, re-run here
//! against [`NetAggDeployment::snapshot`] to pin the metrics contract of
//! DESIGN.md ("Observability") — scheduler latencies, shim fan-in and
//! emulated empties, and transport traffic all show up with nonzero
//! values after one aggregated request.

use bytes::Bytes;
use netagg_net::{ChannelTransport, Transport};
use netagg_repro::netagg_core::prelude::*;
use netagg_repro::netagg_core::runtime::NetAggDeployment;
use std::sync::Arc;
use std::time::Duration;

struct Max;
impl AggregationFunction for Max {
    type Item = i64;
    fn deserialize(&self, b: &Bytes) -> Result<i64, AggError> {
        std::str::from_utf8(b)
            .ok()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| AggError::Corrupt("not an integer".into()))
    }
    fn serialize(&self, item: &i64) -> Bytes {
        Bytes::from(item.to_string())
    }
    fn aggregate(&self, items: Vec<i64>) -> i64 {
        items.into_iter().max().unwrap_or(i64::MIN)
    }
    fn empty(&self) -> i64 {
        i64::MIN
    }
}

/// One max-aggregation request through a single-rack deployment leaves a
/// consistent trail across every metered layer.
#[test]
fn quick_example_flow_publishes_metrics() {
    let transport: Arc<dyn Transport> = Arc::new(ChannelTransport::new());
    let cluster = ClusterSpec::single_rack(4, 1);
    let mut deployment = NetAggDeployment::launch(transport, &cluster).unwrap();
    let app = deployment.register_app("max", Arc::new(AggWrapper::new(Max)), 1.0);

    let master = deployment.master_shim(app);
    let workers: Vec<_> = (0..4).map(|w| deployment.worker_shim(app, w)).collect();

    let pending = master.register_request(7, 4);
    for (i, w) in workers.iter().enumerate() {
        w.send_partial(7, Bytes::from((10 * (i + 1)).to_string()))
            .unwrap();
    }
    let result = pending.wait(Duration::from_secs(5)).unwrap();
    assert_eq!(result.combined.as_ref(), b"40");
    assert_eq!(result.emulated_empty, 3);

    // Metric publication is asynchronous with respect to request
    // completion (the scheduler stamps task_exec_us after the task's own
    // sends have already reached the master), so poll briefly for the
    // trailing updates before asserting on the settled snapshot.
    let deadline = std::time::Instant::now() + Duration::from_secs(2);
    let snap = loop {
        let s = deployment.snapshot();
        let settled = s.histogram("aggbox.task_exec_us").map(|h| h.count) > Some(0)
            && s.counter("net.frames_sent").unwrap_or(0) >= 5;
        if settled || std::time::Instant::now() > deadline {
            break s;
        }
        std::thread::sleep(Duration::from_millis(5));
    };

    // Box scheduler: aggregation tasks ran and their latency was recorded.
    let exec = snap
        .histogram("aggbox.task_exec_us")
        .expect("aggbox.task_exec_us recorded");
    assert!(exec.count > 0, "no task executions recorded");
    assert!(snap.counter("aggbox.tasks_executed").unwrap_or(0) > 0);
    assert_eq!(snap.counter("aggbox.tasks_executed"), Some(exec.count));

    // Box fan-in: four partials arrived, one request completed, the
    // end-to-end aggregation latency was measured.
    assert_eq!(snap.counter("aggbox.messages_in"), Some(4));
    assert!(snap.counter("aggbox.bytes_in").unwrap_or(0) >= 8);
    assert_eq!(snap.counter("aggbox.requests_completed"), Some(1));
    assert_eq!(
        snap.histogram("aggbox.request_agg_us").map(|h| h.count),
        Some(1)
    );

    // Master shim: one request registered and completed, the final
    // aggregate arrived as one message, and all but one worker result was
    // emulated as empty.
    assert_eq!(snap.counter("shim.master.requests_registered"), Some(1));
    assert_eq!(snap.counter("shim.master.requests_completed"), Some(1));
    assert_eq!(snap.counter("shim.master.messages_in"), Some(1));
    assert_eq!(snap.counter("shim.master.emulated_empties"), Some(3));
    assert_eq!(
        snap.histogram("shim.master.request_wait_us")
            .map(|h| h.count),
        Some(1)
    );

    // Worker shims: each of the four workers sent one redirected chunk.
    assert_eq!(snap.counter("shim.worker.chunks_sent"), Some(4));
    assert!(snap.counter("shim.worker.bytes_sent").unwrap_or(0) >= 8);

    // Transport: the metered deployment transport carried the traffic —
    // four worker partials plus the box's final aggregate to the master.
    assert!(snap.counter("net.frames_sent").unwrap_or(0) >= 5);
    assert!(snap.counter("net.bytes_sent").unwrap_or(0) > 0);
    assert!(snap.counter("net.frames_recv").unwrap_or(0) >= 5);

    // The WFQ weight gauge exists for the registered app.
    assert!(snap.gauge("aggbox.wfq_weight.app0").is_some());

    // The snapshot serialises; JSON carries the same counter values.
    let json = snap.to_json();
    assert!(json.contains("\"aggbox.tasks_executed\""));
    assert!(json.contains("\"shim.master.emulated_empties\": 3"));

    deployment.shutdown();
}
