//! §15 closing the loop: every lock-acquisition edge the runtime witness
//! observes during the quick scenario mix must be contained in the static
//! graph `netagg-lint` recovers (lexical edges plus the declared
//! cross-layer table). The lint proves the graph is safe; this proves the
//! graph is the one the runtime actually walks — the same bidirectional
//! discipline as the §7 metrics contract.

use std::path::Path;

use netagg_net::lifecycle::{witness_edges, witness_reset};
use netagg_scenarios::{
    builtin_providers, run_scenario, Impairment, ScenarioSpec, SyntheticKind, TopologySpec,
};

#[test]
fn every_witnessed_edge_is_in_the_static_graph() {
    if !cfg!(debug_assertions) {
        // Release builds compile the witness out; nothing to check.
        return;
    }
    witness_reset();

    // The quick mix: all three workloads, a box kill and a straggler
    // storm, on both transports — the same drive the soak harness uses,
    // shrunk to seconds.
    let spec = ScenarioSpec::new("lock-witness", TopologySpec::multi_rack(2, 3, 1))
        .synthetic("sum", SyntheticKind::Sum, 600, 2.0)
        .synthetic("topk", SyntheticKind::TopK { k: 4 }, 300, 1.0)
        .mapreduce(6, 1.0)
        .impair(Impairment::BoxKill {
            slot: 0,
            after_requests: 250,
        })
        .impair(Impairment::StragglerStorm {
            workers: vec![1, 4],
            delay_ms: 1,
            from_requests: 100,
            until_requests: 200,
        })
        .with_fast_detector()
        .with_inflight(8);
    for provider in builtin_providers() {
        let report = run_scenario(&spec, provider.as_ref()).unwrap();
        assert!(report.passed(), "{}", report.summary());
    }

    let observed = witness_edges();
    assert!(
        !observed.is_empty(),
        "the witness recorded no edges — are the hot paths still on OrderedMutex?"
    );

    let graph = netagg_lint::lock_graph_names(Path::new(env!("CARGO_MANIFEST_DIR"))).unwrap();
    let missing: Vec<&(String, String)> = observed
        .iter()
        .filter(|(from, to)| !graph.contains(&(from.clone(), to.clone())))
        .collect();
    assert!(
        missing.is_empty(),
        "runtime acquisition edges missing from the static §15 graph \
         (add a declared edge or fix the code): {missing:?}"
    );
}
