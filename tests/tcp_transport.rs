//! End-to-end fences for the sharded TCP reactor (DESIGN.md §12) at the
//! deployment level: the whole aggregation stack over real sockets, the
//! reactor threads accounted for in `runtime.threads_active`, and the
//! failure-recovery path behaving identically to the channel transport.

use bytes::Bytes;
use netagg_core::failure::DetectorConfig;
use netagg_core::prelude::*;
use netagg_net::{DetRng, FaultController, FaultStep, FaultTransport, TcpTransport, Transport};
use std::sync::Arc;
use std::time::Duration;

/// Sum-of-integers aggregation over a trivial text encoding.
struct Sum;
impl AggregationFunction for Sum {
    type Item = i64;
    fn deserialize(&self, b: &Bytes) -> Result<i64, AggError> {
        std::str::from_utf8(b)
            .ok()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| AggError::Corrupt("not an int".into()))
    }
    fn serialize(&self, v: &i64) -> Bytes {
        Bytes::from(v.to_string())
    }
    fn aggregate(&self, items: Vec<i64>) -> i64 {
        items.into_iter().sum()
    }
    fn empty(&self) -> i64 {
        0
    }
}

fn sum_agg() -> Arc<dyn DynAggregator> {
    Arc::new(AggWrapper::new(Sum))
}

fn parse(b: &Bytes) -> i64 {
    std::str::from_utf8(b).unwrap().parse().unwrap()
}

fn fast_detector() -> DetectorConfig {
    DetectorConfig {
        interval: Duration::from_millis(30),
        timeout: Duration::from_millis(60),
        misses: 2,
    }
}

/// Seed for the fault schedules. Override with `NETAGG_FAULT_SEED=<u64>`
/// to reproduce a specific run (same convention as `recovery.rs`).
fn fault_seed() -> u64 {
    std::env::var("NETAGG_FAULT_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0xAE57_11E5)
}

/// Graceful shutdown: after the deployment shuts down and the last
/// transport handle drops, every thread — box runtimes AND the
/// `net-reactor-<i>` shards — must be joined, leaving
/// `runtime.threads_active` at exactly zero (§12 invariant 5).
#[test]
fn tcp_shutdown_joins_all_reactor_threads() {
    let transport: Arc<dyn Transport> = Arc::new(TcpTransport::new());
    let cluster = ClusterSpec::single_rack(4, 1);
    let mut dep = NetAggDeployment::launch(transport, &cluster).unwrap();
    let obs = dep.obs().clone();
    let app = dep.register_app("sum", sum_agg(), 1.0);
    let master = dep.master_shim(app);
    let workers: Vec<_> = (0..4).map(|w| dep.worker_shim(app, w)).collect();

    let pending = master.register_request(1, 4);
    for w in &workers {
        w.send_partial(1, Bytes::from("5")).unwrap();
    }
    assert_eq!(
        parse(&pending.wait(Duration::from_secs(10)).unwrap().combined),
        20
    );
    // The reactor is up and counted while the deployment runs.
    assert!(
        obs.snapshot()
            .gauge("runtime.threads_active")
            .unwrap_or(0.0)
            > 0.0,
        "running deployment must report live threads"
    );

    dep.shutdown();
    // Every handle that (transitively) holds the transport must go:
    // the pending-request handle keeps the master shim alive, the shims
    // keep the metered transport alive, the deployment keeps everything.
    drop(pending);
    drop(master);
    drop(workers);
    drop(dep); // last transport handle → reactor JoinScope joins the shards
    assert_eq!(
        obs.snapshot().gauge("runtime.threads_active"),
        Some(0.0),
        "threads survived shutdown (reactor shards not joined?)"
    );
}

/// Recovery parity with the channel transport: kill the rack box after a
/// seeded number of frames, mid-request, over real sockets. The fan-in
/// ledger must still produce the exact total (5+7+11=23) once the
/// detector re-points the workers at the master.
#[test]
fn tcp_kill_mid_request_recovers_with_exact_total() {
    let seed = fault_seed();
    let mut rng = DetRng::new(seed);
    for round in 0..3u64 {
        let n = rng.gen_range(1, 12);
        let ctl = FaultController::new();
        let transport: Arc<dyn Transport> =
            Arc::new(FaultTransport::new(TcpTransport::new(), ctl.clone()));
        let cluster = ClusterSpec::single_rack(3, 1);
        let mut dep = NetAggDeployment::launch(transport, &cluster).unwrap();
        let app = dep.register_app("sum", sum_agg(), 1.0);
        let master = dep.master_shim(app);
        let workers: Vec<_> = (0..3).map(|w| dep.worker_shim(app, w)).collect();
        dep.enable_failure_detection(fast_detector());
        let box_addr = dep.boxes()[0].addr();

        ctl.schedule(FaultStep {
            watch: box_addr,
            after_frames: ctl.frames_delivered(box_addr) + n,
            kill_target: box_addr,
        });

        let req = round + 1;
        let p = master.register_request(req, 3);
        // Sends may fail if the box is already dead; the replay buffer
        // recovers them once the detector re-points the worker.
        let _ = workers[0].send_partial(req, Bytes::from("5"));
        let _ = workers[1].send_partial(req, Bytes::from("7"));
        std::thread::sleep(Duration::from_millis(400));
        let _ = workers[2].send_partial(req, Bytes::from("11"));
        let result = p.wait(Duration::from_secs(10)).unwrap_or_else(|e| {
            panic!("seed {seed:#x} round {round} (kill after {n} frames): {e:?}")
        });
        assert_eq!(
            parse(&result.combined),
            23,
            "seed {seed:#x} round {round}: kill after {n} frames must still total 23"
        );
        ctl.clear_schedule();
        ctl.revive(box_addr);
        dep.shutdown();
    }
}
