//! End-to-end fences for the §11 causal-tracing contract: the spans of
//! one request always form a single connected tree rooted at the master's
//! request span — across components, across transports, and across a box
//! killed mid-request — and sampling keeps the recorder bounded.

use bytes::Bytes;
use netagg_repro::netagg_core::failure::DetectorConfig;
use netagg_repro::netagg_core::prelude::*;
use netagg_repro::netagg_core::protocol::TreeId;
use netagg_repro::netagg_net::{
    ChannelTransport, FaultController, FaultTransport, TcpTransport, Transport,
};
use netagg_repro::netagg_obs::names::spans;
use netagg_repro::netagg_obs::trace::{self, SpanRecord, TraceRecorder};
use std::collections::HashSet;
use std::sync::Arc;
use std::time::{Duration, Instant};

struct Sum;
impl AggregationFunction for Sum {
    type Item = i64;
    fn deserialize(&self, b: &Bytes) -> Result<i64, AggError> {
        std::str::from_utf8(b)
            .ok()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| AggError::Corrupt("not an int".into()))
    }
    fn serialize(&self, v: &i64) -> Bytes {
        Bytes::from(v.to_string())
    }
    fn aggregate(&self, items: Vec<i64>) -> i64 {
        items.into_iter().sum()
    }
    fn empty(&self) -> i64 {
        0
    }
}

fn sum_agg() -> Arc<dyn DynAggregator> {
    Arc::new(AggWrapper::new(Sum))
}

/// Assert the spans of `trace` form exactly one tree: one root (parent 0,
/// span id = trace id) and every other span's parent recorded. Returns
/// the spans of the trace.
fn assert_connected(all: &[SpanRecord], trace: u64) -> Vec<SpanRecord> {
    let spans: Vec<SpanRecord> = all
        .iter()
        .filter(|s| s.trace_id == trace)
        .cloned()
        .collect();
    assert!(!spans.is_empty(), "no spans recorded for trace {trace:#x}");
    let ids: HashSet<u64> = spans.iter().map(|s| s.span_id).collect();
    let roots: Vec<&SpanRecord> = spans.iter().filter(|s| s.parent_span_id == 0).collect();
    assert_eq!(
        roots.len(),
        1,
        "trace {trace:#x} must have exactly one root: {roots:?}"
    );
    assert_eq!(roots[0].span_id, trace, "root span id is the trace id");
    for s in &spans {
        assert!(
            s.parent_span_id == 0 || ids.contains(&s.parent_span_id),
            "span {:#x} ({} in {}) is orphaned: parent {:#x} was never recorded",
            s.span_id,
            s.name,
            s.component,
            s.parent_span_id
        );
    }
    spans
}

fn assert_covers_every_layer(spans: &[SpanRecord]) {
    for (layer, pred) in [
        (
            "master shim",
            spans.iter().any(|s| s.component.starts_with("master-")),
        ),
        (
            "agg box",
            spans
                .iter()
                .any(|s| s.component.starts_with("aggbox-") && !s.component.ends_with("-sched")),
        ),
        (
            "scheduler task",
            spans.iter().any(|s| s.component.ends_with("-sched")),
        ),
        (
            "worker shim",
            spans.iter().any(|s| s.component.starts_with("worker-")),
        ),
    ] {
        assert!(pred, "no span from the {layer} layer: {spans:?}");
    }
    for name in [
        spans::MASTER_REQUEST,
        spans::MASTER_RECV,
        spans::BOX_REQUEST,
        spans::BOX_RECV,
        spans::BOX_QUEUE_WAIT,
        spans::BOX_COMBINE,
        spans::BOX_FORWARD,
        spans::WORKER_SEND,
        spans::WIRE_TRANSFER,
    ] {
        assert!(
            spans.iter().any(|s| s.name == name),
            "span {name} missing from the request tree"
        );
    }
}

/// The quick-example flow leaves one connected, layer-complete span tree —
/// on the in-process channel transport and on real TCP sockets alike.
#[test]
fn quick_flow_trace_is_one_connected_tree_on_both_transports() {
    let transports: Vec<(&str, Arc<dyn Transport>)> = vec![
        ("channel", Arc::new(ChannelTransport::new())),
        ("tcp", Arc::new(TcpTransport::new())),
    ];
    for (label, transport) in transports {
        let cluster = ClusterSpec::single_rack(4, 1);
        let mut dep = NetAggDeployment::launch(transport, &cluster).unwrap();
        let obs = dep.obs().clone();
        obs.tracer().enable(1);
        let app = dep.register_app("sum", sum_agg(), 1.0);
        let master = dep.master_shim(app);
        let workers: Vec<_> = (0..4).map(|w| dep.worker_shim(app, w)).collect();

        let pending = master.register_request(7, 4);
        for w in &workers {
            w.send_partial(7, Bytes::from("5")).unwrap();
        }
        let result = pending.wait(Duration::from_secs(10)).unwrap();
        assert_eq!(result.combined.as_ref(), b"20", "{label}");
        // Shutdown joins every thread, so all trailing spans are recorded.
        dep.shutdown();

        let all = obs.tracer().spans();
        let spans = assert_connected(&all, trace::trace_id(app.0, 7));
        assert_covers_every_layer(&spans);
        assert_eq!(obs.tracer().dropped(), 0, "{label}: spans dropped");
    }
}

/// A box killed mid-request must not sever the trace: the recovery path
/// re-parents the adopted contributors under the master (re-point mark
/// included), the dead box's open request span is closed at teardown, and
/// the exported spans still form one connected tree.
#[test]
fn trace_survives_box_kill_as_one_connected_tree() {
    let ctl = FaultController::new();
    let transport: Arc<dyn Transport> =
        Arc::new(FaultTransport::new(ChannelTransport::new(), ctl.clone()));
    let cluster = ClusterSpec::single_rack(3, 1);
    let mut dep = NetAggDeployment::launch(transport, &cluster).unwrap();
    let obs = dep.obs().clone();
    obs.tracer().enable(1);
    let app = dep.register_app("sum", sum_agg(), 1.0);
    let master = dep.master_shim(app);
    let workers: Vec<_> = (0..3).map(|w| dep.worker_shim(app, w)).collect();
    dep.enable_failure_detection(DetectorConfig {
        interval: Duration::from_millis(30),
        timeout: Duration::from_millis(60),
        misses: 2,
    });
    let box_addr = dep.boxes()[0].addr();

    // Two contributors deliver through the box, then it dies mid-request.
    let pending = master.register_request(1, 3);
    workers[0].send_partial(1, Bytes::from("5")).unwrap();
    workers[1].send_partial(1, Bytes::from("7")).unwrap();
    // Kill only after the box has actually ingested both chunks —
    // otherwise the kill races frame delivery and the box has no
    // request state (or spans) to survive.
    let deadline = Instant::now() + Duration::from_secs(5);
    while dep.snapshot().counter("aggbox.messages_in").unwrap_or(0) < 2 {
        assert!(Instant::now() < deadline, "box never saw the chunks");
        std::thread::sleep(Duration::from_millis(5));
    }
    ctl.kill(box_addr);

    // The detector re-points all workers directly at the master.
    let deadline = Instant::now() + Duration::from_secs(8);
    while !workers
        .iter()
        .all(|w| w.assignment(TreeId(0)) == Some(master.addr()))
    {
        assert!(Instant::now() < deadline, "workers never re-pointed");
        std::thread::sleep(Duration::from_millis(25));
    }
    workers[2].send_partial(1, Bytes::from("11")).unwrap();
    let result = pending.wait(Duration::from_secs(10)).unwrap();
    assert_eq!(result.combined.as_ref(), b"23");

    ctl.revive(box_addr);
    dep.shutdown();

    let all = obs.tracer().spans();
    let spans = assert_connected(&all, trace::trace_id(app.0, 1));
    // The failure must be visible inside the tree, not as a severed branch:
    // the re-point mark, replayed worker chunks, and the dead box's
    // teardown-closed request span all attach to recorded parents.
    assert!(
        spans.iter().any(|s| s.name == spans::MASTER_REPOINT),
        "re-point mark missing: {spans:?}"
    );
    assert!(
        spans.iter().any(|s| s.name == spans::WORKER_RESEND),
        "replayed chunks must carry resend spans"
    );
    assert!(
        spans
            .iter()
            .any(|s| s.name == spans::BOX_REQUEST && s.component.starts_with("aggbox-")),
        "dead box's request span must be closed at teardown"
    );
}

/// 1/16 sampling over 10 000 requests: the recorder keeps only sampled
/// traces and never outgrows its capacity bound.
#[test]
fn sampling_keeps_the_recorder_bounded_over_ten_thousand_requests() {
    let t = TraceRecorder::with_capacity(4096);
    t.enable(16);
    let mut sampled = 0u64;
    for request in 0..10_000u64 {
        if !t.sampled(request) {
            continue;
        }
        sampled += 1;
        let tid = trace::trace_id(0, request);
        let span = t.next_span_id();
        let now = trace::now_ns();
        t.record_span(
            spans::MASTER_REQUEST,
            "master-0",
            tid,
            tid,
            0,
            request,
            now,
            now + 10,
        );
        t.record_span(
            spans::WORKER_SEND,
            "worker-0-0",
            tid,
            span,
            tid,
            request,
            now,
            now + 5,
        );
    }
    assert!(
        (300..1000).contains(&sampled),
        "1/16 sampling admitted {sampled} of 10000 requests"
    );
    assert!(t.len() <= t.capacity(), "recorder outgrew its bound");
    let expected_drops = (2 * sampled).saturating_sub(t.capacity() as u64);
    assert_eq!(
        t.dropped(),
        expected_drops,
        "overflow must be counted, not silently lost"
    );
    // Unsampled requests must leave no spans at all.
    let traced: HashSet<u64> = t.spans().iter().map(|s| s.request).collect();
    assert!(traced.iter().all(|r| t.sampled(*r)));
}
