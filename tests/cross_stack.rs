//! Cross-crate integration tests: both applications sharing one NetAgg
//! deployment, the emulated testbed reproducing the paper's headline
//! ratios at small scale, and simulation/testbed consistency.

use bytes::Bytes;
use minimr::cluster::JobConfig;
use minisearch::corpus::CorpusConfig;
use netagg_repro::netagg_scenarios::{
    ChannelProvider, ScenarioHarness, ScenarioSpec, TopologySpec,
};
use netagg_repro::netagg_sim;
use std::time::Duration;

/// Corpus used by the shared-deployment test; seed 5 pins the shards.
fn shared_corpus() -> CorpusConfig {
    CorpusConfig {
        num_docs: 200,
        vocabulary: 800,
        mean_words: 40,
        markers_per_doc: 3,
        seed: 5,
    }
}

/// Both applications (search + map/reduce) share one deployment and one
/// agg box; the box's scheduler accounts CPU per application. The
/// workloads are driven by hand through the harness accessors (zero
/// spec-driven requests), so the test controls exact inputs.
#[test]
fn search_and_mapreduce_share_one_deployment() {
    let spec = ScenarioSpec::new("shared-deployment", TopologySpec::single_rack(4, 1))
        .search_with_backend_k(0, shared_corpus(), 10, 30, 2.0)
        .mapreduce(0, 1.0);
    let harness = ScenarioHarness::build(&spec, &ChannelProvider).unwrap();
    let search = harness.search(0).unwrap();
    let mr = harness.mapreduce(1).unwrap();
    assert_ne!(search.app, mr.app);

    // Interleave work from both applications.
    let mr_inputs = vec![
        vec![Bytes::from_static(b"x y x")],
        vec![Bytes::from_static(b"y z")],
        vec![Bytes::from_static(b"x")],
        vec![],
    ];
    let mr_result = mr.run(mr_inputs, &JobConfig::default()).unwrap();
    for q in 0..5 {
        let out = search
            .frontend
            .query(&[minisearch::corpus::word(q)])
            .unwrap();
        assert!(out.latency < Duration::from_secs(10));
    }
    let count = |k: &[u8]| {
        mr_result
            .output
            .iter()
            .find(|p| p.key.as_ref() == k)
            .and_then(|p| minimr::types::parse_u64(&p.value))
    };
    assert_eq!(count(b"x"), Some(3));
    assert_eq!(count(b"y"), Some(2));

    // The box's scheduler ran tasks for both applications.
    let cpu = harness.deployment().boxes()[0].scheduler().cpu_times();
    assert_eq!(cpu.len(), 2);
    for c in &cpu {
        assert!(c.tasks_run > 0, "app {:?} ran no box tasks", c.app);
    }
    let report = harness.finish();
    assert!(report.violations.is_empty(), "{:?}", report.violations);
}

/// The simulator's headline comparison holds under contention: NetAgg
/// beats rack-level aggregation at the 99th percentile of workload flows.
#[test]
fn sim_netagg_beats_rack_under_load() {
    use netagg_sim::metrics::FlowClass;
    let mut base = netagg_sim::ExperimentConfig::default_scale();
    base.workload.num_flows = 1_200;
    let mut rack = base.clone();
    rack.strategy = netagg_sim::Strategy::RackLevel;
    let mut netagg = base;
    netagg.strategy = netagg_sim::Strategy::NetAgg;
    let rack_p99 = netagg_sim::run_experiment(&rack).fct_p99(FlowClass::All);
    let net_p99 = netagg_sim::run_experiment(&netagg).fct_p99(FlowClass::All);
    assert!(
        net_p99 < rack_p99,
        "netagg p99 {net_p99} should beat rack {rack_p99}"
    );
    // Aggregation flows see the strongest effect (the funnel moves from a
    // 1 Gbps server to a 10 Gbps box).
    let rack_agg = netagg_sim::run_experiment(&rack).fct_p99(FlowClass::Aggregation);
    let net_agg = netagg_sim::run_experiment(&netagg).fct_p99(FlowClass::Aggregation);
    assert!(
        net_agg < 0.7 * rack_agg,
        "agg flows: {net_agg} vs {rack_agg}"
    );
}

/// The flow-level simulator and the emulated testbed agree on the headline
/// mechanism: on-path aggregation relieves the master's edge link.
#[test]
fn sim_and_testbed_agree_on_reduction() {
    use netagg_sim::metrics::FlowClass;
    // Simulator at quick scale.
    let mut cfg = netagg_sim::ExperimentConfig::quick();
    cfg.workload.num_flows = 400;
    cfg.strategy = netagg_sim::Strategy::NetAgg;
    let sim = netagg_sim::run_experiment(&cfg);
    assert!(sim.fct_p99(FlowClass::All) > 0.0);
    // Derived segments carry less than the raw partials (data reduction).
    let raw: f64 = sim
        .records
        .iter()
        .filter(|r| netagg_sim::metrics::FlowClass::Aggregation.matches(r.kind))
        .map(|r| r.size)
        .sum();
    let derived: f64 = sim
        .records
        .iter()
        .filter(|r| netagg_sim::metrics::FlowClass::Derived.matches(r.kind))
        .map(|r| r.size)
        .sum();
    assert!(
        derived < raw,
        "derived {derived} should be reduced below raw {raw}"
    );
}

/// One deployment with the straggler policy enabled serves both
/// applications and completes requests even when a rack box lags.
#[test]
fn multi_rack_search_with_straggler_policy() {
    use netagg_repro::netagg_core::runtime::DeploymentConfig;
    use netagg_repro::netagg_core::straggler::StragglerPolicy;
    let spec = ScenarioSpec::new("straggler-policy", TopologySpec::multi_rack(2, 2, 1))
        .with_tuning(DeploymentConfig {
            straggler: Some(StragglerPolicy {
                threshold: Duration::from_millis(300),
                repeat_limit: 100,
            }),
            ..DeploymentConfig::default()
        })
        .search_with_backend_k(
            0,
            CorpusConfig {
                num_docs: 150,
                vocabulary: 500,
                mean_words: 30,
                markers_per_doc: 3,
                seed: 9,
            },
            5,
            20,
            1.0,
        );
    let harness = ScenarioHarness::build(&spec, &ChannelProvider).unwrap();
    let search = harness.search(0).unwrap();
    for q in 0..8 {
        let out = search
            .frontend
            .query(&[minisearch::corpus::word(q % 20)])
            .unwrap();
        assert!(out.results.docs.len() <= 5);
    }
    let report = harness.finish();
    assert!(report.violations.is_empty(), "{:?}", report.violations);
}

/// A search cluster keeps answering queries after its agg box dies: the
/// failure detector re-points the backends' shims at the master and
/// replay buffers recover the in-flight query.
#[test]
fn search_survives_box_failure() {
    // The harness always layers a `FaultTransport` over the provider's
    // transport, so ad-hoc kills go through `harness.fault()`.
    let spec = ScenarioSpec::new("search-box-failure", TopologySpec::single_rack(4, 1))
        .search_with_backend_k(
            0,
            CorpusConfig {
                num_docs: 200,
                vocabulary: 800,
                mean_words: 40,
                markers_per_doc: 3,
                seed: 11,
            },
            10,
            30,
            1.0,
        )
        .with_fast_detector();
    let harness = ScenarioHarness::build(&spec, &ChannelProvider).unwrap();
    let search = harness.search(0).unwrap();

    let before = search
        .frontend
        .query(&[minisearch::corpus::word(0)])
        .unwrap();
    assert!(!before.results.docs.is_empty());

    let box_addr = harness.deployment().boxes()[0].addr();
    harness.fault().kill(box_addr);
    std::thread::sleep(Duration::from_millis(400)); // detector fires

    // Queries after the failure bypass the dead box and return the same
    // results (the merge is deterministic either way).
    let after = search
        .frontend
        .query(&[minisearch::corpus::word(0)])
        .unwrap();
    let ids =
        |o: &minisearch::QueryOutcome| o.results.docs.iter().map(|d| d.doc).collect::<Vec<_>>();
    assert_eq!(ids(&before), ids(&after));
    harness.fault().revive(box_addr);
    let report = harness.finish();
    assert!(report.violations.is_empty(), "{:?}", report.violations);
    assert!(report.detections >= 1, "detector never fired");
}

/// Speculative re-execution emits duplicate mapper output; the boxes'
/// per-source sequence suppression keeps the job's result exact.
#[test]
fn mapreduce_speculative_duplicates_are_exact() {
    let spec =
        ScenarioSpec::new("mr-speculation", TopologySpec::single_rack(3, 1)).mapreduce(0, 1.0);
    let harness = ScenarioHarness::build(&spec, &ChannelProvider).unwrap();
    let mr = harness.mapreduce(0).unwrap();
    let inputs = vec![
        vec![Bytes::from_static(b"a b a c"), Bytes::from_static(b"b b")],
        vec![Bytes::from_static(b"c a")],
        vec![Bytes::from_static(b"a")],
    ];
    let plain = mr
        .run(
            inputs.clone(),
            &JobConfig {
                request_id: 1,
                ..JobConfig::default()
            },
        )
        .unwrap();
    let speculative = mr
        .run(
            inputs,
            &JobConfig {
                request_id: 2,
                speculate_every: 1, // every worker re-sends its chunks
                ..JobConfig::default()
            },
        )
        .unwrap();
    assert!(minimr::types::outputs_equivalent(
        &plain.output,
        &speculative.output
    ));
    let count = |k: &[u8]| {
        speculative
            .output
            .iter()
            .find(|p| p.key.as_ref() == k)
            .and_then(|p| minimr::types::parse_u64(&p.value))
    };
    assert_eq!(count(b"a"), Some(4));
    assert_eq!(count(b"b"), Some(3));
    assert_eq!(count(b"c"), Some(2));
    // Speculative duplicates were suppressed, not delivered twice; the
    // harness's teardown contract re-checks that from the metrics.
    let report = harness.finish();
    assert!(report.violations.is_empty(), "{:?}", report.violations);
}
