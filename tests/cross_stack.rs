//! Cross-crate integration tests: both applications sharing one NetAgg
//! deployment, the emulated testbed reproducing the paper's headline
//! ratios at small scale, and simulation/testbed consistency.

use bytes::Bytes;
use minimr::cluster::{JobConfig, MRCluster};
use minimr::jobs::Benchmark;
use minisearch::corpus::CorpusConfig;
use minisearch::frontend::FrontendConfig;
use minisearch::netagg::{SearchCluster, SearchFunction};
use netagg_net::{ChannelTransport, Transport};
use netagg_repro::netagg_core::prelude::*;
use netagg_repro::netagg_core::runtime::NetAggDeployment;
use netagg_repro::netagg_core::shim::TreeSelection;
use netagg_repro::netagg_sim;
use std::sync::Arc;
use std::time::Duration;

/// Both applications (search + map/reduce) share one deployment and one
/// agg box; the box's scheduler accounts CPU per application.
#[test]
fn search_and_mapreduce_share_one_deployment() {
    let transport: Arc<dyn Transport> = Arc::new(ChannelTransport::new());
    let cluster_spec = ClusterSpec::single_rack(4, 1);
    let mut dep = NetAggDeployment::launch(transport.clone(), &cluster_spec).unwrap();

    let mut search = SearchCluster::launch(
        &mut dep,
        transport.clone(),
        &CorpusConfig {
            num_docs: 200,
            vocabulary: 800,
            mean_words: 40,
            markers_per_doc: 3,
            seed: 5,
        },
        SearchFunction::TopK { k: 10 },
        FrontendConfig {
            backend_k: 30,
            timeout: Duration::from_secs(10),
        },
        2.0,
    )
    .unwrap();
    let mr = MRCluster::launch(
        &mut dep,
        Benchmark::WC.job(),
        TreeSelection::PerRequest,
        1.0,
    );
    assert_ne!(search.app, mr.app);

    // Interleave work from both applications.
    let mr_inputs = vec![
        vec![Bytes::from_static(b"x y x")],
        vec![Bytes::from_static(b"y z")],
        vec![Bytes::from_static(b"x")],
        vec![],
    ];
    let mr_result = mr.run(mr_inputs, &JobConfig::default()).unwrap();
    for q in 0..5 {
        let out = search
            .frontend
            .query(&[minisearch::corpus::word(q)])
            .unwrap();
        assert!(out.latency < Duration::from_secs(10));
    }
    let count = |k: &[u8]| {
        mr_result
            .output
            .iter()
            .find(|p| p.key.as_ref() == k)
            .and_then(|p| minimr::types::parse_u64(&p.value))
    };
    assert_eq!(count(b"x"), Some(3));
    assert_eq!(count(b"y"), Some(2));

    // The box's scheduler ran tasks for both applications.
    let cpu = dep.boxes()[0].scheduler().cpu_times();
    assert_eq!(cpu.len(), 2);
    for c in &cpu {
        assert!(c.tasks_run > 0, "app {:?} ran no box tasks", c.app);
    }
    search.shutdown();
    dep.shutdown();
}

/// The simulator's headline comparison holds under contention: NetAgg
/// beats rack-level aggregation at the 99th percentile of workload flows.
#[test]
fn sim_netagg_beats_rack_under_load() {
    use netagg_sim::metrics::FlowClass;
    let mut base = netagg_sim::ExperimentConfig::default_scale();
    base.workload.num_flows = 1_200;
    let mut rack = base.clone();
    rack.strategy = netagg_sim::Strategy::RackLevel;
    let mut netagg = base;
    netagg.strategy = netagg_sim::Strategy::NetAgg;
    let rack_p99 = netagg_sim::run_experiment(&rack).fct_p99(FlowClass::All);
    let net_p99 = netagg_sim::run_experiment(&netagg).fct_p99(FlowClass::All);
    assert!(
        net_p99 < rack_p99,
        "netagg p99 {net_p99} should beat rack {rack_p99}"
    );
    // Aggregation flows see the strongest effect (the funnel moves from a
    // 1 Gbps server to a 10 Gbps box).
    let rack_agg = netagg_sim::run_experiment(&rack).fct_p99(FlowClass::Aggregation);
    let net_agg = netagg_sim::run_experiment(&netagg).fct_p99(FlowClass::Aggregation);
    assert!(
        net_agg < 0.7 * rack_agg,
        "agg flows: {net_agg} vs {rack_agg}"
    );
}

/// The flow-level simulator and the emulated testbed agree on the headline
/// mechanism: on-path aggregation relieves the master's edge link.
#[test]
fn sim_and_testbed_agree_on_reduction() {
    use netagg_sim::metrics::FlowClass;
    // Simulator at quick scale.
    let mut cfg = netagg_sim::ExperimentConfig::quick();
    cfg.workload.num_flows = 400;
    cfg.strategy = netagg_sim::Strategy::NetAgg;
    let sim = netagg_sim::run_experiment(&cfg);
    assert!(sim.fct_p99(FlowClass::All) > 0.0);
    // Derived segments carry less than the raw partials (data reduction).
    let raw: f64 = sim
        .records
        .iter()
        .filter(|r| netagg_sim::metrics::FlowClass::Aggregation.matches(r.kind))
        .map(|r| r.size)
        .sum();
    let derived: f64 = sim
        .records
        .iter()
        .filter(|r| netagg_sim::metrics::FlowClass::Derived.matches(r.kind))
        .map(|r| r.size)
        .sum();
    assert!(
        derived < raw,
        "derived {derived} should be reduced below raw {raw}"
    );
}

/// One deployment with the straggler policy enabled serves both
/// applications and completes requests even when a rack box lags.
#[test]
fn multi_rack_search_with_straggler_policy() {
    use netagg_repro::netagg_core::runtime::DeploymentConfig;
    use netagg_repro::netagg_core::straggler::StragglerPolicy;
    let transport: Arc<dyn Transport> = Arc::new(ChannelTransport::new());
    let cluster_spec = ClusterSpec::multi_rack(2, 2, 1);
    let mut dep = NetAggDeployment::launch_with(
        transport.clone(),
        &cluster_spec,
        DeploymentConfig {
            straggler: Some(StragglerPolicy {
                threshold: Duration::from_millis(300),
                repeat_limit: 100,
            }),
            ..DeploymentConfig::default()
        },
    )
    .unwrap();
    let mut search = SearchCluster::launch(
        &mut dep,
        transport,
        &CorpusConfig {
            num_docs: 150,
            vocabulary: 500,
            mean_words: 30,
            markers_per_doc: 3,
            seed: 9,
        },
        SearchFunction::TopK { k: 5 },
        FrontendConfig {
            backend_k: 20,
            timeout: Duration::from_secs(10),
        },
        1.0,
    )
    .unwrap();
    for q in 0..8 {
        let out = search
            .frontend
            .query(&[minisearch::corpus::word(q % 20)])
            .unwrap();
        assert!(out.results.docs.len() <= 5);
    }
    search.shutdown();
    dep.shutdown();
}

/// A search cluster keeps answering queries after its agg box dies: the
/// failure detector re-points the backends' shims at the master and
/// replay buffers recover the in-flight query.
#[test]
fn search_survives_box_failure() {
    use netagg_net::{FaultController, FaultTransport};
    use netagg_repro::netagg_core::failure::DetectorConfig;
    let ctl = FaultController::new();
    let transport: Arc<dyn Transport> =
        Arc::new(FaultTransport::new(ChannelTransport::new(), ctl.clone()));
    let cluster_spec = ClusterSpec::single_rack(4, 1);
    let mut dep = NetAggDeployment::launch(transport.clone(), &cluster_spec).unwrap();
    let mut search = SearchCluster::launch(
        &mut dep,
        transport,
        &CorpusConfig {
            num_docs: 200,
            vocabulary: 800,
            mean_words: 40,
            markers_per_doc: 3,
            seed: 11,
        },
        SearchFunction::TopK { k: 10 },
        FrontendConfig {
            backend_k: 30,
            timeout: Duration::from_secs(10),
        },
        1.0,
    )
    .unwrap();
    dep.enable_failure_detection(DetectorConfig {
        interval: Duration::from_millis(30),
        timeout: Duration::from_millis(60),
        misses: 2,
    });

    let before = search
        .frontend
        .query(&[minisearch::corpus::word(0)])
        .unwrap();
    assert!(!before.results.docs.is_empty());

    ctl.kill(dep.boxes()[0].addr());
    std::thread::sleep(Duration::from_millis(400)); // detector fires

    // Queries after the failure bypass the dead box and return the same
    // results (the merge is deterministic either way).
    let after = search
        .frontend
        .query(&[minisearch::corpus::word(0)])
        .unwrap();
    let ids =
        |o: &minisearch::QueryOutcome| o.results.docs.iter().map(|d| d.doc).collect::<Vec<_>>();
    assert_eq!(ids(&before), ids(&after));
    ctl.revive(dep.boxes()[0].addr());
    search.shutdown();
    dep.shutdown();
}

/// Speculative re-execution emits duplicate mapper output; the boxes'
/// per-source sequence suppression keeps the job's result exact.
#[test]
fn mapreduce_speculative_duplicates_are_exact() {
    let transport: Arc<dyn Transport> = Arc::new(ChannelTransport::new());
    let cluster_spec = ClusterSpec::single_rack(3, 1);
    let mut dep = NetAggDeployment::launch(transport, &cluster_spec).unwrap();
    let mr = MRCluster::launch(
        &mut dep,
        Benchmark::WC.job(),
        TreeSelection::PerRequest,
        1.0,
    );
    let inputs = vec![
        vec![Bytes::from_static(b"a b a c"), Bytes::from_static(b"b b")],
        vec![Bytes::from_static(b"c a")],
        vec![Bytes::from_static(b"a")],
    ];
    let plain = mr
        .run(
            inputs.clone(),
            &JobConfig {
                request_id: 1,
                ..JobConfig::default()
            },
        )
        .unwrap();
    let speculative = mr
        .run(
            inputs,
            &JobConfig {
                request_id: 2,
                speculate_every: 1, // every worker re-sends its chunks
                ..JobConfig::default()
            },
        )
        .unwrap();
    assert!(minimr::types::outputs_equivalent(
        &plain.output,
        &speculative.output
    ));
    let count = |k: &[u8]| {
        speculative
            .output
            .iter()
            .find(|p| p.key.as_ref() == k)
            .and_then(|p| minimr::types::parse_u64(&p.value))
    };
    assert_eq!(count(b"a"), Some(4));
    assert_eq!(count(b"b"), Some(3));
    assert_eq!(count(b"c"), Some(2));
    dep.shutdown();
}
