//! Umbrella crate for the NetAgg reproduction: re-exports the workspace
//! crates so examples and integration tests have one coherent entry point.
//!
//! * [`netagg_core`] — the middlebox platform (the paper's contribution).
//! * [`netagg_net`] — transports, framing, link emulation, fault injection.
//! * [`netagg_obs`] — metrics registry and structured-event buffer.
//! * [`netagg_scenarios`] — declarative scenario specs, transport
//!   providers and the soak harness.
//! * [`netagg_sim`] — the flow-level data-centre simulator.
//! * [`minisearch`] — the distributed search engine (Solr substitute).
//! * [`minimr`] — the map/reduce framework (Hadoop substitute).

pub use minimr;
pub use minisearch;
pub use netagg_core;
pub use netagg_net;
pub use netagg_obs;
pub use netagg_scenarios;
pub use netagg_sim;
